(* Extension benchmark: publish/subscribe filtering throughput.

   YFilter's proposition (and the reason the paper compares against that
   family) is that a shared automaton filters large subscription sets
   cheaply — but only for forward-only linear paths. χαος runs one engine
   per subscription with no sharing, yet accepts the full language
   (backward axes, predicates). This bench quantifies both sides:
   per-document filtering time against subscription-set size for the
   common supported class, and the fraction of a realistic mixed workload
   each system can accept at all. *)

open Xaos_core

let tags =
  [| "site"; "regions"; "item"; "name"; "description"; "parlist"; "listitem";
     "text"; "category"; "person"; "open_auction"; "bidder"; "seller" |]

(* random forward-only linear subscriptions (YFilter's class) *)
let linear_subscription rng =
  let buf = Buffer.create 32 in
  for _ = 1 to 1 + Xaos_workloads.Prng.int rng 3 do
    Buffer.add_string buf
      (if Xaos_workloads.Prng.bool rng then "/" else "//");
    Buffer.add_string buf
      (if Xaos_workloads.Prng.int rng 8 = 0 then "*"
       else Xaos_workloads.Prng.pick rng tags)
  done;
  Buffer.contents buf

(* mixed workload: linear plus predicates and backward axes *)
let mixed_subscription rng =
  match Xaos_workloads.Prng.int rng 4 with
  | 0 -> linear_subscription rng
  | 1 ->
    Printf.sprintf "//%s[%s]"
      (Xaos_workloads.Prng.pick rng tags)
      (Xaos_workloads.Prng.pick rng tags)
  | 2 ->
    Printf.sprintf "//%s/ancestor::%s"
      (Xaos_workloads.Prng.pick rng tags)
      (Xaos_workloads.Prng.pick rng tags)
  | _ ->
    Printf.sprintf "//%s/parent::%s//%s"
      (Xaos_workloads.Prng.pick rng tags)
      (Xaos_workloads.Prng.pick rng tags)
      (Xaos_workloads.Prng.pick rng tags)

let run ~subscription_counts ~docs () =
  Util.print_header
    "Filtering (extension): shared YFilter automaton vs per-query xaos engines";
  let documents =
    List.init docs (fun i ->
        Xaos_workloads.Xmark.to_string
          (Xaos_workloads.Xmark.config ~seed:(500 + i) 0.002))
  in
  let doc_kb =
    List.fold_left (fun acc d -> acc + String.length d) 0 documents / 1024
  in
  Printf.printf "%d documents, %d KB total\n" docs doc_kb;
  let rows =
    List.map
      (fun n ->
        let rng = Xaos_workloads.Prng.create (n * 13) in
        let subs = List.init n (fun _ -> linear_subscription rng) in
        let paths = List.map Xaos_xpath.Parser.parse subs in
        let nfa =
          match Xaos_baseline.Yfilter.build paths with
          | Ok nfa -> nfa
          | Error e -> failwith e
        in
        let set =
          match
            Query_set.compile
              (List.mapi (fun i q -> (string_of_int i, q)) subs)
          with
          | Ok s -> s
          | Error e -> failwith e
        in
        let yf_matches = ref 0 in
        let (), yf_time =
          Util.time (fun () ->
              List.iter
                (fun doc ->
                  let matched = Xaos_baseline.Yfilter.run_string nfa doc in
                  yf_matches := !yf_matches + List.length matched)
                documents)
        in
        let xaos_matches = ref 0 in
        let (), xaos_time =
          Util.time (fun () ->
              List.iter
                (fun doc ->
                  let outcomes = Query_set.run_string set doc in
                  xaos_matches :=
                    !xaos_matches
                    + List.length (Query_set.matching_names outcomes))
                documents)
        in
        if !yf_matches <> !xaos_matches then
          failwith "filtering bench: systems disagree";
        ( n,
          Xaos_baseline.Yfilter.state_count nfa,
          yf_time,
          xaos_time,
          !yf_matches ))
      subscription_counts
  in
  Util.print_table
    ~columns:
      [ "subscriptions"; "nfa states"; "yfilter s"; "xaos s"; "ratio";
        "matches" ]
    (List.map
       (fun (n, states, yf, xa, matches) ->
         [ string_of_int n; string_of_int states; Util.fsec yf; Util.fsec xa;
           Printf.sprintf "%.1fx" (xa /. yf); string_of_int matches ])
       rows);
  (* capability coverage on a mixed workload *)
  let rng = Xaos_workloads.Prng.create 99 in
  let mixed = List.init 200 (fun _ -> mixed_subscription rng) in
  let yfilter_ok =
    List.length
      (List.filter
         (fun q -> Xaos_baseline.Yfilter.supported (Xaos_xpath.Parser.parse q))
         mixed)
  in
  let xaos_ok =
    List.length
      (List.filter (fun q -> Result.is_ok (Query.compile q)) mixed)
  in
  Util.note
    "language coverage on a mixed 200-subscription workload: yfilter %d/200, \
     xaos %d/200"
    yfilter_ok xaos_ok;
  Util.note "the shared automaton wins on throughput for its class; xaos";
  Util.note "accepts the predicates and backward axes the class excludes."
