bench/main.ml: Ablation Arg Cmd Cmdliner Fig5 Fig67 Filtering Micro Table3 Term
