bench/fig5.ml: Filename Fun List Printf Query Result_set Sys Unix Util Xaos_baseline Xaos_core Xaos_workloads Xaos_xml Xaos_xpath
