bench/ablation.ml: Engine List Printf Query Result_set Stats String Util Xaos_core Xaos_workloads Xaos_xml
