bench/fig67.ml: Item List Printf Query Result_set Util Xaos_baseline Xaos_core Xaos_workloads Xaos_xml Xaos_xpath
