bench/micro.ml: Analyze Bechamel Benchmark Hashtbl Instance List Measure Printf Query Staged Test Time Toolkit Util Xaos_baseline Xaos_core Xaos_workloads Xaos_xml Xaos_xpath
