bench/table3.ml: Buffer List Printf Query Stats String Util Xaos_core Xaos_workloads Xaos_xml
