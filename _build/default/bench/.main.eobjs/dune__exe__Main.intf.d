bench/main.mli:
