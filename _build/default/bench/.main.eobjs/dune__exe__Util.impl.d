bench/util.ml: Buffer Gc List Printf String Sys Unix
