bench/filtering.ml: Buffer List Printf Query Query_set Result String Util Xaos_baseline Xaos_core Xaos_workloads Xaos_xpath
