(* Figures 6 and 7: random size-6 expressions over generated documents
   (Section 6.2), 10 (query, document) runs per document size, reporting
   mean and standard deviation.

   Figure 6 (overall time, parsing included):
     - χαος(SAX): stream the XML text through the engine;
     - Xalan: parse + build the DOM tree + evaluate;
     - χαος(DOM): build the DOM tree, then replay its events through the
       engine (the paper's trick to factor out parsing costs fairly).

   Figure 7 (searching time only): the tree is prebuilt; we time only the
   evaluation (Xalan) and only the replay (χαος(DOM)). The paper finds
   χαος more than 2x faster on average with far lower variance — the
   baseline is bimodal, degrading on descendant-heavy expressions. *)

open Xaos_core

type series = {
  xaos_sax : float list;
  xalan : float list;
  xaos_dom : float list;
  xalan_search : float list;
  xaos_dom_search : float list;
}

let run_size ~runs ~elements =
  let samples = ref [] in
  for run = 1 to runs do
    let seed = (elements * 31) + run in
    let spec = Xaos_workloads.Randgen.generate_spec ~seed () in
    let doc_s =
      Xaos_workloads.Randgen.document_string spec ~seed:(seed * 7) ~elements
    in
    let query_s = Xaos_xpath.Ast.to_string spec.Xaos_workloads.Randgen.query in
    let q = Query.compile_exn query_s in
    let path = spec.Xaos_workloads.Randgen.query in
    (* Figure 6: overall, parsing included *)
    let r1, t_xaos_sax = Util.time (fun () -> Query.run_string q doc_s) in
    let (doc, r2), t_xalan =
      Util.time (fun () ->
          let doc = Xaos_xml.Dom.of_string doc_s in
          (doc, Xaos_baseline.Dom_engine.eval doc path))
    in
    let r3, t_xaos_dom =
      Util.time (fun () ->
          let doc = Xaos_xml.Dom.of_string doc_s in
          Query.run_doc q doc)
    in
    (* Figure 7: searching only, tree prebuilt *)
    let r4, t_xalan_search =
      Util.time (fun () -> Xaos_baseline.Dom_engine.eval doc path)
    in
    let r5, t_xaos_dom_search = Util.time (fun () -> Query.run_doc q doc) in
    (* cross-check while we are here: all five agree *)
    let norm items = List.sort_uniq Item.compare items in
    let reference = norm r1.Result_set.items in
    List.iter
      (fun (name, got) ->
        if not (List.equal Item.equal reference (norm got)) then
          failwith (Printf.sprintf "bench cross-check failed (%s, %s)" name query_s))
      [ ("xalan", r2); ("xaos-dom", r3.Result_set.items); ("xalan-search", r4);
        ("xaos-dom-search", r5.Result_set.items) ];
    samples :=
      (t_xaos_sax, t_xalan, t_xaos_dom, t_xalan_search, t_xaos_dom_search)
      :: !samples
  done;
  let pick f = List.map f !samples in
  {
    xaos_sax = pick (fun (a, _, _, _, _) -> a);
    xalan = pick (fun (_, b, _, _, _) -> b);
    xaos_dom = pick (fun (_, _, c, _, _) -> c);
    xalan_search = pick (fun (_, _, _, d, _) -> d);
    xaos_dom_search = pick (fun (_, _, _, _, e) -> e);
  }

let default_sizes = [ 20_000; 40_000; 80_000; 160_000 ]

let paper_sizes = [ 20_000; 40_000; 80_000; 160_000; 320_000; 640_000 ]

let run ~sizes ~runs () =
  let all = List.map (fun n -> (n, run_size ~runs ~elements:n)) sizes in
  Util.print_header
    (Printf.sprintf
       "Figure 6: overall time incl. parsing (random size-6 XPaths, %d runs/size)"
       runs);
  Util.print_table
    ~columns:[ "elements"; "xaos(SAX) s"; "xalan s"; "xaos(DOM) s" ]
    (List.map
       (fun (n, s) ->
         [ Util.fint n;
           Util.fsec_pm (Util.mean s.xaos_sax) (Util.stddev s.xaos_sax);
           Util.fsec_pm (Util.mean s.xalan) (Util.stddev s.xalan);
           Util.fsec_pm (Util.mean s.xaos_dom) (Util.stddev s.xaos_dom) ])
       all);
  Util.note "paper: xaos(SAX) ~25%% faster than Xalan overall; Xalan's stddev large";
  Util.print_header
    (Printf.sprintf "Figure 7: searching time, parsing/tree building excluded (%d runs/size)"
       runs);
  Util.print_table
    ~columns:[ "elements"; "xalan s"; "xaos(DOM) s"; "speedup" ]
    (List.map
       (fun (n, s) ->
         let mx = Util.mean s.xalan_search in
         let md = Util.mean s.xaos_dom_search in
         [ Util.fint n;
           Util.fsec_pm mx (Util.stddev s.xalan_search);
           Util.fsec_pm md (Util.stddev s.xaos_dom_search);
           Printf.sprintf "%.2fx" (mx /. md) ])
       all);
  Util.note "paper: more than 2x, with high Xalan variance (bimodal on bad expressions)";
  all
