(* Shared benchmark plumbing: wall-clock timing, memory probes, run
   statistics, and fixed-width table rendering. *)

let time f =
  let t0 = Unix.gettimeofday () in
  let result = f () in
  (result, Unix.gettimeofday () -. t0)

let mean samples =
  match samples with
  | [] -> 0.
  | _ -> List.fold_left ( +. ) 0. samples /. float_of_int (List.length samples)

let stddev samples =
  match samples with
  | [] | [ _ ] -> 0.
  | _ ->
    let m = mean samples in
    let var =
      List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.)) 0. samples
      /. float_of_int (List.length samples - 1)
    in
    sqrt var

(* Live heap bytes after a full collection. *)
let live_bytes () =
  Gc.full_major ();
  (Gc.stat ()).Gc.live_words * (Sys.word_size / 8)

(* Run [f] while sampling the major-heap size at the end of every major
   collection cycle; returns (result, peak heap bytes seen). This is what
   "memory use" means for a streaming engine: retention between
   collections, not final live data. *)
let with_peak_heap f =
  Gc.compact ();
  let peak = ref (Gc.quick_stat ()).Gc.heap_words in
  let alarm =
    Gc.create_alarm (fun () ->
        let w = (Gc.quick_stat ()).Gc.heap_words in
        if w > !peak then peak := w)
  in
  let finish () = Gc.delete_alarm alarm in
  let result =
    try f ()
    with e ->
      finish ();
      raise e
  in
  finish ();
  let w = (Gc.quick_stat ()).Gc.heap_words in
  if w > !peak then peak := w;
  (result, !peak * (Sys.word_size / 8))

let mb bytes = float_of_int bytes /. 1048576.

(* ------------------------------------------------------------------ *)
(* Table rendering                                                     *)
(* ------------------------------------------------------------------ *)

let print_header title =
  Printf.printf "\n=== %s ===\n" title

let print_table ~columns rows =
  let widths =
    List.mapi
      (fun i col ->
        List.fold_left
          (fun w row -> max w (String.length (List.nth row i)))
          (String.length col) rows)
      columns
  in
  let print_row cells =
    List.iteri
      (fun i cell -> Printf.printf "%-*s  " (List.nth widths i) cell)
      cells;
    print_newline ()
  in
  print_row columns;
  print_row (List.map (fun w -> String.make w '-') widths);
  List.iter print_row rows

let fsec t = Printf.sprintf "%.3f" t

let fsec_pm m s = Printf.sprintf "%.3f ± %.3f" m s

let fpct x = Printf.sprintf "%.2f%%" (100. *. x)

let fint n =
  (* thousands separators for readability *)
  let s = string_of_int n in
  let len = String.length s in
  let buf = Buffer.create (len + (len / 3)) in
  String.iteri
    (fun i c ->
      if i > 0 && (len - i) mod 3 = 0 then Buffer.add_char buf ',';
      Buffer.add_char buf c)
    s;
  Buffer.contents buf

let note fmt = Printf.printf ("  note: " ^^ fmt ^^ "\n")
