(* The paper's headline scenario (Figure 5 / Table 3): evaluate
   //listitem/ancestor::category//name over an XMark auction document,
   streaming from a file, and compare with the DOM baseline on the same
   data — time, memory behaviour, and the fraction of elements the
   relevance filter discarded.

   Run with:  dune exec examples/xmark_report.exe            (default scale)
              dune exec examples/xmark_report.exe -- 0.05    (bigger)  *)

open Xaos_core

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let () =
  let scale =
    if Array.length Sys.argv > 1 then float_of_string Sys.argv.(1) else 0.02
  in
  let file = Filename.temp_file "xmark" ".xml" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove file with Sys_error _ -> ())
    (fun () ->
      let elements =
        Xaos_workloads.Xmark.to_file (Xaos_workloads.Xmark.config scale) file
      in
      let size_mb =
        float_of_int (Unix.stat file).Unix.st_size /. 1048576.
      in
      Format.printf "document: %s (scale %g, %.2f MB, %d elements)@.@." file
        scale size_mb elements;

      let expression = Xaos_workloads.Xmark.paper_query in
      Format.printf "expression: %s@.@." expression;

      (* χαος: stream straight from the file; memory stays flat *)
      let query = Query.compile_exn expression in
      let (result, stats), xaos_time =
        time (fun () -> Query.run_file_with_stats query file)
      in
      Format.printf "xaos (streaming):@.";
      Format.printf "  time:      %.3f s@." xaos_time;
      Format.printf "  results:   %d category names@."
        (List.length result.Result_set.items);
      Format.printf "  filtering: %d of %d elements discarded (%.2f%%)@."
        stats.Stats.elements_discarded stats.Stats.elements_total
        (100. *. Stats.discarded_fraction stats);
      Format.printf "  stored:    %d elements, %d matching structures@.@."
        stats.Stats.elements_stored stats.Stats.structures_created;

      (* baseline: materialize the whole tree first *)
      let (doc, baseline_items), baseline_time =
        time (fun () ->
            let doc = Xaos_xml.Dom.of_string (In_channel.with_open_bin file In_channel.input_all) in
            (doc, Xaos_baseline.Dom_engine.eval doc (Xaos_xpath.Parser.parse expression)))
      in
      Format.printf "baseline (DOM):@.";
      Format.printf "  time:      %.3f s (%.1fx xaos)@." baseline_time
        (baseline_time /. xaos_time);
      Format.printf "  tree:      %d elements held in memory@."
        doc.Xaos_xml.Dom.element_count;
      Format.printf "  agreement: %b@."
        (List.equal Item.equal baseline_items result.Result_set.items);

      (* the first few results, in the paper's notation *)
      Format.printf "@.first results:@.";
      List.iteri
        (fun i item -> if i < 5 then Format.printf "  %a@." Item.pp item)
        result.Result_set.items)
