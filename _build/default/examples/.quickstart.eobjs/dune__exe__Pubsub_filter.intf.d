examples/pubsub_filter.mli:
