examples/xmark_report.mli:
