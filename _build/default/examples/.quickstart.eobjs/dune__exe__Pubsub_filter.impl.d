examples/pubsub_filter.ml: Format List Printf Query_set String Xaos_core Xaos_workloads
