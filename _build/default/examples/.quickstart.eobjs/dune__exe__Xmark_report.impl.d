examples/xmark_report.ml: Array Filename Format Fun In_channel Item List Query Result_set Stats Sys Unix Xaos_baseline Xaos_core Xaos_workloads Xaos_xml Xaos_xpath
