examples/auction_join.mli:
