examples/quickstart.ml: Engine Format Query Result_set Stats Xaos_core Xaos_xml
