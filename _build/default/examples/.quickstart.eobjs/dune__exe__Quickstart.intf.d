examples/quickstart.mli:
