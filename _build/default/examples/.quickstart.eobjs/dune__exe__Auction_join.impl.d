examples/auction_join.ml: Format Item List Query Result_set String Xaos_core Xaos_workloads
