(* Multiple outputs and joins (paper, Sections 5.3–5.4): [$]-marked
   expressions return tuples, evaluated in the same single pass. The
   example extracts (auction, bidder date, item reference) triples from an
   auction site — the kind of extraction TurboXPath shipped to a backend
   database in two phases, done here in one.

   Run with:  dune exec examples/auction_join.exe *)

open Xaos_core

let () =
  let doc = Xaos_workloads.Xmark.to_string (Xaos_workloads.Xmark.config 0.004) in
  Format.printf "document: %d KB of auction data@.@." (String.length doc / 1024);

  (* Every ($open_auction, $date, $itemref) combination such that the
     auction has a bidder with that date and references that item. *)
  let expression = "//$open_auction[bidder/$date]/$itemref" in
  Format.printf "expression: %s@.@." expression;
  let query = Query.compile_exn expression in
  let result = Query.run_string query doc in
  (match result.Result_set.tuples with
  | None -> Format.printf "no tuples?@."
  | Some tuples ->
    Format.printf "%d result tuples; first five:@." (List.length tuples);
    List.iteri
      (fun i tuple ->
        if i < 5 then
          Format.printf "  (%a)@."
            (Format.pp_print_array
               ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
               Item.pp)
            tuple)
      tuples);

  (* The x-dag doubles as an intersection of expressions (Section 5.4):
     this is //Y[U]//W intersected with //Z[V]//W on the paper's example. *)
  let fig2 = "<X><Y><W/><Z><V/><V/><W><W/></W></Z><U/></Y><Y><Z><W/></Z><U/></Y></X>" in
  let intersection = "//Y[U]//W[ancestor::Z/V]" in
  Format.printf "@.intersection  //Y[U]//W  *  //Z[V]//W :@.";
  Format.printf "  %s on the paper's Figure 2 document@." intersection;
  let r = Query.run_string (Query.compile_exn intersection) fig2 in
  Format.printf "  result: %a  (both constraints on the same W)@."
    Result_set.pp r;

  (* A join with multiple marked nodes enumerates the witness tuples. *)
  let join = "//Y[$U]//$W[ancestor::Z/$V]" in
  let rj = Query.run_string (Query.compile_exn join) fig2 in
  match rj.Result_set.tuples with
  | Some tuples ->
    Format.printf "@.join %s:@." join;
    List.iter
      (fun tuple ->
        Format.printf "  (%a)@."
          (Format.pp_print_array
             ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
             Item.pp)
          tuple)
      tuples
  | None -> ()
