(* Publish/subscribe filtering — the XFilter/YFilter scenario of the
   paper's introduction, with the capability those systems lack: backward
   axes in subscriptions.

   A broker holds a set of XPath subscriptions; each incoming document is
   parsed once, every subscription's engine consumes the same event
   stream, and the document is routed to the subscribers whose expression
   matched.

   Run with:  dune exec examples/pubsub_filter.exe *)

open Xaos_core

let subscriptions =
  [
    ("alice", "//open_auction[bidder]/itemref");
    ("bob", "//item[incategory]//name");
    (* backward axes: only deliverable by χαος among streaming engines *)
    ("carol", "//listitem/ancestor::category//name");
    ("dave", "//bidder/ancestor::open_auction[interval]");
    ("erin", "//person[@id='person3']//name");
    ("frank", "//closed_auction[price and annotation//text]");
  ]

let () =
  let broker =
    match Query_set.compile subscriptions with
    | Ok set -> set
    | Error msg -> failwith msg
  in
  (* a stream of five different "published" documents *)
  let documents =
    List.init 5 (fun i ->
        ( Printf.sprintf "doc-%d" i,
          Xaos_workloads.Xmark.to_string
            (Xaos_workloads.Xmark.config ~seed:(100 + i) 0.003) ))
  in
  Format.printf "%d subscriptions, %d documents@.@." (Query_set.size broker)
    (List.length documents);
  List.iter
    (fun (doc_name, doc) ->
      (* one parse of the document feeds every subscription *)
      let outcomes = Query_set.run_string broker doc in
      let matched =
        List.filter (fun o -> o.Query_set.items <> []) outcomes
      in
      Format.printf "%s (%d KB) -> %d subscriber(s)@." doc_name
        (String.length doc / 1024)
        (List.length matched);
      List.iter
        (fun o ->
          Format.printf "  %-6s %d hit(s)@." o.Query_set.query_name
            (List.length o.Query_set.items))
        matched)
    documents
