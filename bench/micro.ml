(* Bechamel micro-benchmarks: one Test.make per table/figure kernel, all
   run from the same executable. These measure the steady-state cost of
   each experiment's inner loop (per-run wall time via OLS against the
   monotonic clock), complementing the end-to-end sweeps. *)

open Bechamel
open Toolkit
open Xaos_core

let make_inputs () =
  (* one small XMark document (Figure 5 / Table 3 workload) *)
  let xmark_s = Xaos_workloads.Xmark.to_string (Xaos_workloads.Xmark.config 0.005) in
  let xmark_doc = Xaos_xml.Dom.of_string xmark_s in
  let paper_q = Query.compile_exn Xaos_workloads.Xmark.paper_query in
  let paper_path = Xaos_xpath.Parser.parse Xaos_workloads.Xmark.paper_query in
  (* one Section 6.2 document (Figures 6 / 7 workload) *)
  let spec = Xaos_workloads.Randgen.generate_spec ~seed:42 () in
  let rnd_s = Xaos_workloads.Randgen.document_string spec ~seed:43 ~elements:5000 in
  let rnd_doc = Xaos_xml.Dom.of_string rnd_s in
  let rnd_q =
    Query.compile_exn (Xaos_xpath.Ast.to_string spec.Xaos_workloads.Randgen.query)
  in
  let rnd_path = spec.Xaos_workloads.Randgen.query in
  (xmark_s, xmark_doc, paper_q, paper_path, rnd_s, rnd_doc, rnd_q, rnd_path)

let tests () =
  let xmark_s, xmark_doc, paper_q, paper_path, rnd_s, rnd_doc, rnd_q, rnd_path =
    make_inputs ()
  in
  [
    Test.make ~name:"fig5/xaos_stream"
      (Staged.stage (fun () -> ignore (Query.run_string paper_q xmark_s)));
    Test.make ~name:"fig5/baseline_build_and_eval"
      (Staged.stage (fun () ->
           let doc = Xaos_xml.Dom.of_string xmark_s in
           ignore (Xaos_baseline.Dom_engine.eval doc paper_path)));
    Test.make ~name:"table3/filter_only"
      (Staged.stage (fun () ->
           (* relevance filtering throughput: feed every event, skip
              result assembly *)
           let run = Query.start paper_q in
           Xaos_xml.Dom.iter_events (Query.feed run) xmark_doc));
    Test.make ~name:"fig6/xaos_sax"
      (Staged.stage (fun () -> ignore (Query.run_string rnd_q rnd_s)));
    Test.make ~name:"fig6/xalan_overall"
      (Staged.stage (fun () ->
           let doc = Xaos_xml.Dom.of_string rnd_s in
           ignore (Xaos_baseline.Dom_engine.eval doc rnd_path)));
    Test.make ~name:"fig6/dom_build_only"
      (Staged.stage (fun () -> ignore (Xaos_xml.Dom.of_string rnd_s)));
    Test.make ~name:"fig7/xaos_dom_search"
      (Staged.stage (fun () -> ignore (Query.run_doc rnd_q rnd_doc)));
    Test.make ~name:"fig7/xalan_search"
      (Staged.stage (fun () ->
           ignore (Xaos_baseline.Dom_engine.eval rnd_doc rnd_path)));
  ]

let run () =
  Util.print_header "Bechamel micro-benchmarks (per-run cost, OLS estimate)";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 1.0) ~stabilize:true ()
  in
  let grouped = Test.make_grouped ~name:"xaos" ~fmt:"%s %s" (tests ()) in
  let raw = Benchmark.all cfg instances grouped in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let estimate =
        match Analyze.OLS.estimates ols_result with
        | Some (e :: _) ->
          Util.record ("micro/" ^ name ^ "/ms") (e /. 1e6);
          Printf.sprintf "%.3f ms" (e /. 1e6)
        | Some [] | None -> "n/a"
      in
      let r2 =
        match Analyze.OLS.r_square ols_result with
        | Some r -> Printf.sprintf "%.4f" r
        | None -> "n/a"
      in
      rows := [ name; estimate; r2 ] :: !rows)
    results;
  Util.print_table
    ~columns:[ "kernel"; "time/run"; "r^2" ]
    (List.sort compare !rows)
