(* Relevance-ratio sweep (PR 4): how much of the document the engine
   actually holds in live matching structures, against how much streams
   past. The paper's space claim is that χαος buffers only the relevant
   fraction of the input; with retained-bytes accounting in Stats this is
   now directly measurable. Three selectivities per workload — the paper
   query (< 0.2 % of elements stored), a subtree-restricted query and a
   match-everything query — at several document sizes: the ratio should
   track the relevant fraction, not the document size. *)

open Xaos_core

let xmark_queries =
  [
    ("paper", Xaos_workloads.Xmark.paper_query);
    ("category-names", "//category//name");
    ("everything", "//*");
  ]

let deep_queries =
  [ ("leaf-det", "//det"); ("np-nouns", "//np//n"); ("everything", "//*") ]

let ratio ~bytes_seen retained =
  if bytes_seen = 0 then 0. else float_of_int retained /. float_of_int bytes_seen

let sweep ~workload ~doc ~queries rows =
  let bytes_seen = String.length doc in
  List.iter
    (fun (label, query) ->
      let q = Query.compile_exn query in
      let _result, stats = Query.run_string_with_stats q doc in
      let r = ratio ~bytes_seen stats.Stats.retained_peak_bytes in
      Util.record
        (Printf.sprintf "relevance_%s_%s_peak_ratio" workload label)
        r;
      Util.record
        (Printf.sprintf "relevance_%s_%s_stored_fraction" workload label)
        (if stats.Stats.elements_total = 0 then 0.
         else
           float_of_int stats.Stats.elements_stored
           /. float_of_int stats.Stats.elements_total);
      rows :=
        [
          workload;
          label;
          Printf.sprintf "%.2f" (Util.mb bytes_seen);
          Util.fint stats.Stats.elements_total;
          Util.fint stats.Stats.elements_stored;
          Util.fint stats.Stats.retained_peak_bytes;
          Printf.sprintf "%.4f" r;
        ]
        :: !rows)
    queries

let run ?(scales = [ 0.005; 0.01; 0.02 ]) ?(deep_sizes = [ 5_000; 20_000 ]) ()
    =
  Util.print_header "Relevance ratio: peak retained bytes vs bytes seen";
  let rows = ref [] in
  List.iter
    (fun scale ->
      let doc =
        Xaos_workloads.Xmark.to_string (Xaos_workloads.Xmark.config scale)
      in
      sweep
        ~workload:(Printf.sprintf "xmark%.4g" scale)
        ~doc ~queries:xmark_queries rows)
    scales;
  List.iter
    (fun n ->
      let doc =
        Xaos_workloads.Deepgen.to_string (Xaos_workloads.Deepgen.config n)
      in
      sweep
        ~workload:(Printf.sprintf "deep%d" n)
        ~doc ~queries:deep_queries rows)
    deep_sizes;
  Util.print_table
    ~columns:
      [
        "workload"; "query"; "doc MB"; "elements"; "stored"; "peak retained";
        "ratio";
      ]
    (List.rev !rows);
  Util.note
    "the ratio follows the query's relevant fraction, not the document \
     size: the paper query stays near zero at every scale, //* tracks the \
     open-path depth"
