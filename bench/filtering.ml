(* Extension benchmark: publish/subscribe filtering throughput.

   YFilter's proposition (and the reason the paper compares against that
   family) is that a shared automaton filters large subscription sets
   cheaply — but only for forward-only linear paths. χαος runs one engine
   per subscription with the full language (backward axes, predicates);
   PR 3 adds the shared dispatch index, which recovers the sharing on the
   event-routing side: each element event reaches only the runs whose
   looking-for frontier can match it.

   The workload is the selective case pub/sub lives on: a few hundred
   topic tags, each subscription pinned to one topic, each document
   covering a handful of topics — so at any moment almost every
   subscription is waiting for a tag the document is not producing. The
   sweep measures per-document filtering time against subscription-set
   size for yfilter, the naive feed-everyone loop, and the shared index;
   shared and naive outcomes are compared as a differential oracle, and
   all three systems must agree on match counts. *)

open Xaos_core
module Prng = Xaos_workloads.Prng

let topic_count = 400

let topics_per_doc = 6

let items_per_topic = 160

let topic i = Printf.sprintf "topic%03d" i

(* forward-only linear subscriptions (YFilter's class), one topic each *)
let subscription rng =
  let t = topic (Prng.int rng topic_count) in
  match Prng.int rng 3 with
  | 0 -> Printf.sprintf "//%s/item" t
  | 1 -> Printf.sprintf "/feed/channel/%s//name" t
  | _ -> Printf.sprintf "//%s//name" t

let document rng =
  let buf = Buffer.create (1 lsl 16) in
  Buffer.add_string buf "<feed><channel>";
  for _ = 1 to topics_per_doc do
    let t = topic (Prng.int rng topic_count) in
    Buffer.add_string buf "<";
    Buffer.add_string buf t;
    Buffer.add_string buf ">";
    for i = 1 to items_per_topic do
      Buffer.add_string buf (Printf.sprintf "<item><name>n%d</name></item>" i)
    done;
    Buffer.add_string buf "</";
    Buffer.add_string buf t;
    Buffer.add_string buf ">"
  done;
  Buffer.add_string buf "</channel></feed>";
  Buffer.contents buf

(* mixed workload: linear plus predicates and backward axes *)
let tags =
  [| "site"; "regions"; "item"; "name"; "description"; "parlist"; "listitem";
     "text"; "category"; "person"; "open_auction"; "bidder"; "seller" |]

let linear_subscription rng =
  let buf = Buffer.create 32 in
  for _ = 1 to 1 + Prng.int rng 3 do
    Buffer.add_string buf (if Prng.bool rng then "/" else "//");
    Buffer.add_string buf
      (if Prng.int rng 8 = 0 then "*" else Prng.pick rng tags)
  done;
  Buffer.contents buf

let mixed_subscription rng =
  match Prng.int rng 4 with
  | 0 -> linear_subscription rng
  | 1 ->
    Printf.sprintf "//%s[%s]" (Prng.pick rng tags) (Prng.pick rng tags)
  | 2 ->
    Printf.sprintf "//%s/ancestor::%s" (Prng.pick rng tags)
      (Prng.pick rng tags)
  | _ ->
    Printf.sprintf "//%s/parent::%s//%s" (Prng.pick rng tags)
      (Prng.pick rng tags) (Prng.pick rng tags)

(* one document's outcomes reduced to a comparable key *)
let outcome_key (o : Query_set.outcome) =
  (o.Query_set.query_name, List.map (fun i -> i.Item.id) o.items, o.aborted)

(* Run the whole document list through one dispatch mode; returns the
   per-document outcome keys (the differential oracle input), the total
   match count, the dispatch stats and the wall-clock time. *)
let run_mode ?compact ?gate set dispatch docs_events =
  let keys = ref [] in
  let matches = ref 0 in
  let dispatched = ref 0 in
  let suppressed = ref 0 in
  let (), time =
    Util.time (fun () ->
        List.iter
          (fun events ->
            let s = Query_set.start ~dispatch ?compact ?gate set in
            List.iter (Query_set.feed s) events;
            let outcomes = Query_set.finish s in
            let d, sup = Query_set.dispatch_stats s in
            dispatched := !dispatched + d;
            suppressed := !suppressed + sup;
            matches :=
              !matches + List.length (Query_set.matching_names outcomes);
            keys := List.map outcome_key outcomes :: !keys)
          docs_events)
  in
  (List.rev !keys, !matches, !dispatched, !suppressed, time)

let run ~subscription_counts ~docs () =
  Util.print_header
    "Filtering (extension): yfilter vs naive loop vs shared dispatch index";
  let doc_rng = Prng.create 501 in
  let documents = List.init docs (fun _ -> document doc_rng) in
  let docs_events =
    List.map (fun d -> Xaos_xml.Sax.events_of_string d) documents
  in
  let elements =
    List.fold_left
      (fun acc evs ->
        acc
        + List.length
            (List.filter
               (function
                 | Xaos_xml.Event.Start_element _ -> true | _ -> false)
               evs))
      0 docs_events
  in
  Printf.printf
    "%d documents, %d elements total, %d topic tags (%d per document)\n"
    docs elements topic_count topics_per_doc;
  let rows =
    List.map
      (fun n ->
        let rng = Prng.create (n * 13) in
        let subs = List.init n (fun _ -> subscription rng) in
        let paths = List.map Xaos_xpath.Parser.parse subs in
        let nfa =
          match Xaos_baseline.Yfilter.build paths with
          | Ok nfa -> nfa
          | Error e -> failwith e
        in
        let set =
          match
            Query_set.compile
              (List.mapi (fun i q -> (string_of_int i, q)) subs)
          with
          | Ok s -> s
          | Error e -> failwith e
        in
        let yf_matches = ref 0 in
        let (), yf_time =
          Util.time (fun () ->
              List.iter
                (fun events ->
                  let r = Xaos_baseline.Yfilter.start nfa in
                  List.iter (Xaos_baseline.Yfilter.feed r) events;
                  yf_matches :=
                    !yf_matches
                    + List.length (Xaos_baseline.Yfilter.matches r))
                docs_events)
        in
        let naive_keys, naive_matches, _, _, naive_time =
          run_mode set Query_set.Naive docs_events
        in
        let shared_keys, shared_matches, dispatched, suppressed, shared_time =
          run_mode set Query_set.Shared docs_events
        in
        (* the differential oracle: byte-identical outcomes, not just
           equal match counts *)
        if naive_keys <> shared_keys then
          failwith "filtering bench: shared dispatch diverged from naive";
        if !yf_matches <> naive_matches || naive_matches <> shared_matches
        then failwith "filtering bench: systems disagree on match count";
        let speedup = naive_time /. shared_time in
        let suppression =
          float_of_int suppressed /. float_of_int (dispatched + suppressed)
        in
        Util.record (Printf.sprintf "filtering/%d/yfilter_s" n) yf_time;
        Util.record (Printf.sprintf "filtering/%d/naive_s" n) naive_time;
        Util.record (Printf.sprintf "filtering/%d/shared_s" n) shared_time;
        Util.record (Printf.sprintf "filtering/%d/shared_speedup" n) speedup;
        Util.record
          (Printf.sprintf "filtering/%d/suppressed_frac" n)
          suppression;
        (n, yf_time, naive_time, shared_time, speedup, suppression,
         naive_matches))
      subscription_counts
  in
  Util.print_table
    ~columns:
      [ "subscriptions"; "yfilter s"; "naive s"; "shared s"; "speedup";
        "suppressed"; "matches" ]
    (List.map
       (fun (n, yf, naive, shared, speedup, suppression, matches) ->
         [ string_of_int n; Util.fsec yf; Util.fsec naive; Util.fsec shared;
           Printf.sprintf "%.1fx" speedup; Util.fpct suppression;
           string_of_int matches ])
       rows);
  (* capability coverage on a mixed workload *)
  let rng = Prng.create 99 in
  let mixed = List.init 200 (fun _ -> mixed_subscription rng) in
  let yfilter_ok =
    List.length
      (List.filter
         (fun q -> Xaos_baseline.Yfilter.supported (Xaos_xpath.Parser.parse q))
         mixed)
  in
  let xaos_ok =
    List.length (List.filter (fun q -> Result.is_ok (Query.compile q)) mixed)
  in
  Util.note
    "language coverage on a mixed 200-subscription workload: yfilter %d/200, \
     xaos %d/200"
    yfilter_ok xaos_ok;
  Util.note "the shared index routes events instead of sharing states, so";
  Util.note "it keeps the full language the automaton class excludes."

(* Whole-query-set compaction (PR 10): duplicate-heavy subscription
   sets, the shape large pub/sub deployments actually have — thousands
   of subscribers over a few hundred distinct queries. The equivalence
   classing folds duplicates into one engine with fan-out emission; the
   shared-prefix gate additionally keeps classes dormant until the
   document touches one of their prefixes. The PR 9 baseline is the
   uncompacted shared index (one engine per subscription); naive is the
   reference oracle for all modes. *)
let compaction ~subs ~distinct ~docs () =
  Util.print_header
    "Whole-query-set compaction: duplicate-heavy subscription sets";
  let doc_rng = Prng.create 501 in
  let documents = List.init docs (fun _ -> document doc_rng) in
  let docs_events =
    List.map (fun d -> Xaos_xml.Sax.events_of_string d) documents
  in
  let pool_rng = Prng.create 47 in
  let pool = Array.init distinct (fun _ -> subscription pool_rng) in
  let pick_rng = Prng.create 53 in
  let sub_list =
    List.init subs (fun _ -> pool.(Prng.int pick_rng distinct))
  in
  let set =
    match
      Query_set.compile (List.mapi (fun i q -> (string_of_int i, q)) sub_list)
    with
    | Ok s -> s
    | Error e -> failwith e
  in
  let classes = Query_set.class_count set in
  let ratio = float_of_int subs /. float_of_int (max 1 classes) in
  Printf.printf
    "%d documents; %d subscriptions drawn from %d distinct queries -> %d \
     engine classes (%.1fx compaction)\n"
    docs subs distinct classes ratio;
  let naive_keys, naive_matches, _, _, naive_time =
    run_mode ~compact:false set Query_set.Naive docs_events
  in
  (* PR 9 baseline: shared dispatch index, one engine per subscription *)
  let unc_keys, unc_matches, _, _, unc_time =
    run_mode ~compact:false set Query_set.Shared docs_events
  in
  let com_keys, com_matches, _, _, com_time =
    run_mode ~compact:true set Query_set.Shared docs_events
  in
  let gate_keys, gate_matches, _, _, gate_time =
    run_mode ~compact:true ~gate:true set Query_set.Shared docs_events
  in
  (* the differential oracle: byte-identical outcomes across every mode *)
  if unc_keys <> naive_keys then
    failwith "compaction bench: uncompacted shared diverged from naive";
  if com_keys <> naive_keys then
    failwith "compaction bench: compacted diverged from naive";
  if gate_keys <> naive_keys then
    failwith "compaction bench: gated diverged from naive";
  if
    naive_matches <> unc_matches
    || unc_matches <> com_matches
    || com_matches <> gate_matches
  then failwith "compaction bench: modes disagree on match count";
  let prefix = Printf.sprintf "compaction/%d" subs in
  let compacted_speedup = unc_time /. com_time in
  let gated_speedup = unc_time /. gate_time in
  Util.record (prefix ^ "/classes") (float_of_int classes);
  Util.record (prefix ^ "/ratio") ratio;
  Util.record (prefix ^ "/naive_s") naive_time;
  Util.record (prefix ^ "/uncompacted_s") unc_time;
  Util.record (prefix ^ "/compacted_s") com_time;
  Util.record (prefix ^ "/gated_s") gate_time;
  Util.record (prefix ^ "/compacted_speedup") compacted_speedup;
  Util.record (prefix ^ "/gated_speedup") gated_speedup;
  Util.print_table
    ~columns:[ "mode"; "engines"; "time s"; "vs PR9 shared"; "matches" ]
    [ [ "naive"; string_of_int subs; Util.fsec naive_time; "-";
        string_of_int naive_matches ];
      [ "shared (PR9)"; string_of_int subs; Util.fsec unc_time; "1.0x";
        string_of_int unc_matches ];
      [ "shared+compact"; string_of_int classes; Util.fsec com_time;
        Printf.sprintf "%.1fx" compacted_speedup; string_of_int com_matches ];
      [ "compact+gate"; string_of_int classes; Util.fsec gate_time;
        Printf.sprintf "%.1fx" gated_speedup; string_of_int gate_matches ] ];
  Util.note
    "one engine per equivalence class: %d subscriptions collapse to %d \
     engines (%.1fx), %.1fx faster than the per-subscription shared index"
    subs classes ratio compacted_speedup;
  compacted_speedup

(* Sustained service load (PR 6): the supervised broker — the evaluation
   core of `xaos serve` — digesting a long document stream against a
   large live subscription set, once clean and once with byte-level
   chaos faults at a fixed rate. The robustness machinery (lenient
   recovery with fault accounting, per-run budgets, resource limits,
   quarantine bookkeeping) is all on this path, so the clean/faulted
   throughput ratio is its price. *)

module Chaos = Xaos_xml.Chaos
module Broker = Xaos_service.Broker

let byte_fault_kinds =
  [ Chaos.Truncate; Chaos.Corrupt_tag; Chaos.Text_burst; Chaos.Depth_burst ]

let sustained ?(earliest = false) ?(attrib = false) ~subs ~docs ~fault_rate
    () =
  Util.print_header
    (if earliest then
       "Sustained service load: broker throughput under chaos faults \
        (earliest-decision emission)"
     else "Sustained service load: broker throughput under chaos faults");
  (* cost attribution for the whole experiment: accounts accumulate over
     both streams and land in the report's attribution section (the
     registry is left enabled so Util.write_report sees it) *)
  if attrib then begin
    Xaos_obs.Attrib.reset ();
    Xaos_obs.Attrib.enable ()
  end;
  let sub_rng = Prng.create 911 in
  let queries =
    List.init subs (fun i -> (Printf.sprintf "s%d" i, subscription sub_rng))
  in
  let doc_rng = Prng.create 907 in
  let documents = List.init docs (fun _ -> document doc_rng) in
  Printf.printf "%d documents against %d live subscriptions, fault rate %g\n"
    docs subs fault_rate;
  let stream label rate =
    let config =
      { Broker.default_config with
        budget = Some 100_000; deadline_s = None; reset_symbols_every = 64;
        earliest }
    in
    let b = Broker.create ~config () in
    List.iter
      (fun (name, query) ->
        match Broker.subscribe b ~name ~query with
        | Ok () -> ()
        | Error e -> failwith e)
      queries;
    let faulted = ref 0 in
    let recoveries = ref 0 in
    let limit_ends = ref 0 in
    let events = ref 0 in
    let matched = ref 0 in
    let streamed = ref 0 in
    let on_item ~name:_ _ = incr streamed in
    let (), time =
      Util.time (fun () ->
          List.iteri
            (fun i doc ->
              let p =
                Chaos.plan ~kinds:byte_fault_kinds ~seed:31 ~rate i
              in
              if Chaos.kind p <> None then incr faulted;
              let o =
                Broker.publish
                  ?on_item:(if earliest then Some on_item else None)
                  b ~doc_id:(string_of_int i)
                  (Chaos.corrupt p doc)
              in
              recoveries := !recoveries + o.Broker.faults;
              if o.Broker.limit_hit <> None then incr limit_ends;
              events := !events + o.Broker.events;
              matched := !matched + List.length o.Broker.matches)
            documents)
    in
    let docs_per_s = float_of_int docs /. time in
    Util.record (Printf.sprintf "sustained/%d/%s_docs_per_s" subs label)
      docs_per_s;
    Util.record
      (Printf.sprintf "sustained/%d/%s_events_per_s" subs label)
      (float_of_int !events /. time);
    if earliest then
      Util.record
        (Printf.sprintf "sustained/%d/%s_streamed_items" subs label)
        (float_of_int !streamed);
    (label, time, docs_per_s, !faulted, !recoveries, !limit_ends, !matched)
  in
  (* Run instrumented: the per-stage and emission histograms populate
     the report's service_latency section, and their clock reads are on
     the supervised path whose price this experiment measures. *)
  let tel_was = Xaos_obs.Telemetry.enabled () in
  Xaos_obs.Telemetry.enable ();
  Xaos_obs.Histogram.reset_all ();
  let rows = [ stream "clean" 0.0; stream "faulted" fault_rate ] in
  List.iter (fun (n, v) -> Util.record n v) (Xaos_obs.Histogram.stats ());
  if not tel_was then Xaos_obs.Telemetry.disable ();
  Util.print_table
    ~columns:
      [ "stream"; "time s"; "docs/s"; "faulted docs"; "recoveries";
        "limit ends"; "matches" ]
    (List.map
       (fun (label, time, dps, faulted, recoveries, limit_ends, matched) ->
         [ label; Util.fsec time; Printf.sprintf "%.0f" dps;
           string_of_int faulted; string_of_int recoveries;
           string_of_int limit_ends; string_of_int matched ])
       rows);
  (match rows with
  | [ (_, _, clean, _, _, _, _); (_, _, faulted, _, _, _, _) ] ->
    Util.record
      (Printf.sprintf "sustained/%d/fault_overhead" subs)
      (clean /. faulted);
    Util.note
      "supervision overhead: the faulted stream runs at %.2fx the clean \
       stream's cost"
      (clean /. faulted)
  | _ -> ());
  (* the cost-skew table: where the match time actually went, per
     subscription — the headline for EXPERIMENTS.md and the data behind
     the committed attribution baseline *)
  if attrib then begin
    let totals = Xaos_obs.Attrib.totals () in
    let top = Xaos_obs.Attrib.top ~by:Xaos_obs.Attrib.By_match_s 10 in
    Util.print_header "Cost attribution: most expensive subscriptions";
    Printf.printf
      "%d accounts, %s match-time seconds total across both streams\n"
      totals.Xaos_obs.Attrib.t_subscriptions
      (Util.fsec totals.Xaos_obs.Attrib.t_match_s);
    let share s =
      if totals.Xaos_obs.Attrib.t_match_s > 0. then
        100. *. s /. totals.Xaos_obs.Attrib.t_match_s
      else 0.
    in
    Util.print_table
      ~columns:
        [ "subscription"; "docs"; "events"; "match ms"; "share %";
          "emitted"; "faults" ]
      (List.map
         (fun (sn : Xaos_obs.Attrib.snapshot) ->
           [ sn.sn_key; string_of_int sn.sn_docs;
             string_of_int sn.sn_events;
             Printf.sprintf "%.3f" (sn.sn_match_s *. 1e3);
             Printf.sprintf "%.1f" (share sn.sn_match_s);
             string_of_int sn.sn_emissions; string_of_int sn.sn_faults ])
         top);
    let top_share =
      share
        (List.fold_left (fun acc sn -> acc +. sn.Xaos_obs.Attrib.sn_match_s)
           0. top)
    in
    Util.record
      (Printf.sprintf "sustained/%d/attrib_top10_match_share_pct" subs)
      top_share;
    Util.note "the top %d accounts hold %.1f%% of all match time"
      (List.length top) top_share
  end
