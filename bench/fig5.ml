(* Figure 5: total time versus XMark document size, χαος versus the
   DOM baseline, for //listitem/ancestor::category//name.

   The paper ran scale factors 0.03125..4 (3.5 MB .. 446 MB) on a 256 MB
   Pentium III: Xalan spikes once the tree no longer fits in memory and
   fails beyond ~200 MB, while χαος stays linear. We reproduce the shape
   at laptop scale by giving the baseline an explicit heap budget (the
   256 MB machine, scaled); the baseline "fails to complete" when the
   materialized tree exceeds it. χαος streams from the file and its
   retained heap stays flat regardless of document size. *)

open Xaos_core

type row = {
  scale : float;
  size_mb : float;
  elements : int;
  xaos_time : float;
  xaos_live_mb : float;
  xaos_results : int;
  baseline : (float * float) option;  (* time, live MB; None = over budget *)
}

let default_scales = [ 0.004; 0.008; 0.016; 0.032; 0.064; 0.128; 0.256; 0.512 ]

let paper_scales = [ 0.03125; 0.0625; 0.125; 0.25; 0.5; 1.0; 2.0; 4.0 ]

let run_one ~budget_bytes scale =
  let cfg = Xaos_workloads.Xmark.config scale in
  let file = Filename.temp_file "xaos_fig5" ".xml" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove file with Sys_error _ -> ())
    (fun () ->
      let elements = Xaos_workloads.Xmark.to_file cfg file in
      let size_mb = Util.mb (Unix.stat file).Unix.st_size in
      let q = Query.compile_exn Xaos_workloads.Xmark.paper_query in
      let baseline_floor = Util.live_bytes () in
      (* χαος: single streaming pass over the file; memory is the peak
         major-heap size during the run *)
      let (result, xaos_time), xaos_peak =
        Util.with_peak_heap (fun () ->
            Util.time (fun () -> Query.run_file q file))
      in
      let xaos_results = List.length result.Result_set.items in
      (* baseline: materialize the tree, then evaluate; refuses to run
         past its memory budget, as the 256 MB machine did *)
      let baseline =
        let t0 = Unix.gettimeofday () in
        let ic = open_in_bin file in
        let build () =
          Fun.protect
            ~finally:(fun () -> close_in_noerr ic)
            (fun () -> Xaos_xml.Dom.of_sax (Xaos_xml.Sax.of_channel ic))
        in
        match build () with
        | doc ->
          let live = Util.live_bytes () - baseline_floor in
          if live > budget_bytes then None
          else begin
            let path =
              Xaos_xpath.Parser.parse Xaos_workloads.Xmark.paper_query
            in
            let _items = Xaos_baseline.Dom_engine.eval doc path in
            Some (Unix.gettimeofday () -. t0, Util.mb live)
          end
        | exception Out_of_memory -> None
      in
      {
        scale;
        size_mb;
        elements;
        xaos_time;
        xaos_live_mb = Util.mb xaos_peak;
        xaos_results;
        baseline;
      })

let run ~scales ~budget_mb () =
  Util.print_header
    "Figure 5: time vs XMark document size (//listitem/ancestor::category//name)";
  let budget_bytes = budget_mb * 1048576 in
  Printf.printf "baseline heap budget: %d MB (models the paper's 256 MB machine)\n"
    budget_mb;
  let rows = List.map (run_one ~budget_bytes) scales in
  (* per-scale stats in the run report, so `xaos report diff` can gate
     streaming-eval time and peak heap across PRs *)
  List.iter
    (fun r ->
      let stat fmt = Printf.sprintf fmt r.scale in
      Util.record (stat "fig5/%.4g/xaos_s") r.xaos_time;
      Util.record (stat "fig5/%.4g/xaos_peak_mb") r.xaos_live_mb;
      match r.baseline with
      | Some (t, _) -> Util.record (stat "fig5/%.4g/baseline_s") t
      | None -> ())
    rows;
  Util.print_table
    ~columns:
      [ "scale"; "size MB"; "elements"; "xaos s"; "xaos peak MB"; "results";
        "baseline s"; "baseline heap MB" ]
    (List.map
       (fun r ->
         [ Printf.sprintf "%.4g" r.scale;
           Printf.sprintf "%.2f" r.size_mb;
           Util.fint r.elements;
           Util.fsec r.xaos_time;
           Printf.sprintf "%.1f" r.xaos_live_mb;
           string_of_int r.xaos_results;
           (match r.baseline with
           | Some (t, _) -> Util.fsec t
           | None -> "FAIL (memory)");
           (match r.baseline with
           | Some (_, m) -> Printf.sprintf "%.1f" m
           | None -> "> budget");
         ])
       rows);
  (* shape checks the paper reports: time per MB should be flat across
     scales (the smallest documents are timer-noise dominated, so the
     check starts at 1 MB) *)
  let per_mb =
    List.filter_map
      (fun r ->
        if r.size_mb >= 1.0 then Some (r.xaos_time /. r.size_mb) else None)
      rows
  in
  (match per_mb with
  | [] -> ()
  | _ :: _ ->
    let lo = List.fold_left min infinity per_mb in
    let hi = List.fold_left max 0. per_mb in
    Util.note "xaos time per MB across scales: %.1f-%.1f ms (flat = linear)"
      (1000. *. lo) (1000. *. hi));
  let failed = List.exists (fun r -> r.baseline = None) rows in
  Util.note "baseline failure past budget reproduced: %b" failed;
  rows
