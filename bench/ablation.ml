(* Ablations of the design choices DESIGN.md calls out (both from the
   paper's Section 5.1 and our Section 4.1 filtering):

   A1 — boolean-subtree optimization: with it, output-free subtrees keep
        only support counters and their structures can be collected; off,
        every matching structure is retained until the end of the
        document. Measured as structures reachable at end of document.
   A2 — relevance filtering (the looking-for set): off, a matching
        structure is allocated for every label match, and composition
        alone rejects the garbage.
   A3 — eager emission on forward-only chain queries: results stream out
        and no structure is retained at all. *)

open Xaos_core

let measure config query doc_s =
  let q = Query.compile_exn ~config query in
  let (result, stats, retained), time =
    Util.time (fun () ->
        let run = Query.start q in
        Xaos_xml.Sax.iter (Query.feed run) (Xaos_xml.Sax.of_string doc_s);
        let result = Query.finish run in
        (result, Query.run_stats run, Query.retained_structures run))
  in
  ( List.length result.Result_set.items,
    time,
    stats.Stats.structures_created,
    retained )

let run ~scale () =
  Util.print_header "Ablations (XMark document)";
  let doc_s =
    Xaos_workloads.Xmark.to_string (Xaos_workloads.Xmark.config scale)
  in
  Printf.printf "document: %.2f MB\n" (Util.mb (String.length doc_s));
  let base = Engine.default_config in
  (* A1 needs predicate subtrees with many matches: with counters, the
     incategory/mailbox structures under each item die immediately; with
     pointers, every one is retained inside its item's slots. *)
  let a1_query = "//item[incategory and mailbox]/name" in
  (* A3 compares retention on a match-everything chain query. *)
  let a3_query = "//description//text" in
  let cases =
    [ ("A1 counters on (default)", a1_query, base);
      ("A1 counters off", a1_query, { base with boolean_subtrees = false });
      ("A2 filter on (default)", Xaos_workloads.Xmark.paper_query, base);
      ( "A2 filter off",
        Xaos_workloads.Xmark.paper_query,
        { base with relevance_filter = false } );
      ("A3 lazy (default)", a3_query, base);
      ("A3 eager", a3_query, { base with emission = Engine.Eager });
      ("A3 earliest", a3_query, { base with emission = Engine.Earliest });
    ]
  in
  Util.print_table
    ~columns:
      [ "configuration"; "query"; "results"; "time s"; "created"; "retained" ]
    (List.map
       (fun (name, query, config) ->
         let results, time, structures, retained =
           measure config query doc_s
         in
         [ name; query; string_of_int results; Util.fsec time;
           Util.fint structures; Util.fint retained ])
       cases);
  Util.note "A1: counters let predicate-subtree structures be collected early.";
  Util.note "A2: the looking-for filter avoids a structure per label match.";
  Util.note "A3: eager emission retains no matching structures at all.";
  Util.note
    "A3: earliest emission streams each result at its decision point while \
     keeping the deferred result set."
