(* Benchmark harness entry point. Every table and figure of the paper's
   evaluation (Section 6) has a subcommand that regenerates it, plus the
   ablations and Bechamel micro-benchmarks:

     dune exec bench/main.exe              # everything, laptop scale
     dune exec bench/main.exe -- fig5      # Figure 5 only
     dune exec bench/main.exe -- fig5 --full --budget-mb 256
     dune exec bench/main.exe -- fig6 --runs 10 --sizes 20000,640000
     dune exec bench/main.exe -- table3 ablation micro

   Absolute numbers differ from the paper's 550 MHz Pentium III; the
   shapes (linearity, who wins, failure modes) are what EXPERIMENTS.md
   records. *)

open Cmdliner

let scales_of ~full scales_opt =
  match scales_opt with
  | Some scales -> scales
  | None -> if full then Fig5.paper_scales else Fig5.default_scales

(* Every subcommand accumulates its tables and scalars through Util and
   flushes them into one JSON run report at the end. *)
let reporting report f =
  Util.set_report_path report;
  f ();
  Util.write_report ()

let run_fig5 report full budget_mb scales_opt =
  reporting report (fun () ->
      ignore (Fig5.run ~scales:(scales_of ~full scales_opt) ~budget_mb ()))

let run_table3 report full scales_opt =
  reporting report (fun () ->
      ignore (Table3.run ~scales:(scales_of ~full scales_opt) ()))

let run_fig67 report full runs sizes_opt =
  let sizes =
    match sizes_opt with
    | Some sizes -> sizes
    | None -> if full then Fig67.paper_sizes else Fig67.default_sizes
  in
  reporting report (fun () -> ignore (Fig67.run ~sizes ~runs ()))

let run_ablation report scale =
  reporting report (fun () -> Ablation.run ~scale ())

let filtering_counts ~full counts_opt =
  match counts_opt with
  | Some counts -> counts
  | None -> if full then [ 10; 100; 1000; 10000 ] else [ 10; 100; 1000 ]

let run_filtering report full counts_opt =
  reporting report (fun () ->
      Filtering.run
        ~subscription_counts:(filtering_counts ~full counts_opt)
        ~docs:(if full then 12 else 8) ())

let run_sustained report subs docs rate earliest attrib =
  reporting report (fun () ->
      Filtering.sustained ~earliest ~attrib ~subs ~docs ~fault_rate:rate ())

let run_micro report = reporting report (fun () -> Micro.run ())

let run_relevance report full scales_opt =
  let scales =
    match scales_opt with
    | Some scales -> scales
    | None -> if full then [ 0.005; 0.01; 0.02; 0.05 ] else [ 0.005; 0.01; 0.02 ]
  in
  reporting report (fun () -> Relevance.run ~scales ())

(* The PR 5 gate sweep: single-query evaluation (Figure 5 shape) plus the
   1000-subscriber filtering point, the two workloads whose hot paths the
   interned-symbol core changed. Record names overlap the committed PR 3
   and PR 4 baselines so `xaos report diff` can compare dispatch and eval
   timings directly. *)
let run_pr5 report full =
  reporting report (fun () ->
      ignore (Fig5.run ~scales:(scales_of ~full None) ~budget_mb:48 ());
      Filtering.run ~subscription_counts:[ 1000 ]
        ~docs:(if full then 12 else 8) ())

(* The PR 10 compaction gate: duplicate-heavy subscription sets at two
   scales, recording the compacted/uncompacted speedup and the class
   counts for `xaos report diff` against the committed baseline. The
   acceptance bar is >= 2x over the per-subscription shared index at
   1000 subscriptions. *)
let run_pr10 report full subs distinct docs =
  reporting report (fun () ->
      ignore (Filtering.compaction ~subs:100 ~distinct:25 ~docs ());
      let speedup = Filtering.compaction ~subs ~distinct ~docs () in
      ignore full;
      if speedup < 2.0 then
        failwith
          (Printf.sprintf
             "pr10 gate: compacted speedup %.2fx is below the 2x acceptance \
              bar"
             speedup))

let run_all report full =
  reporting report (fun () ->
      ignore (Fig5.run ~scales:(scales_of ~full None) ~budget_mb:48 ());
      ignore (Table3.run ~scales:(scales_of ~full None) ());
      let sizes = if full then Fig67.paper_sizes else Fig67.default_sizes in
      ignore (Fig67.run ~sizes ~runs:(if full then 10 else 5) ());
      Ablation.run ~scale:(if full then 0.05 else 0.02) ();
      Filtering.run
        ~subscription_counts:(filtering_counts ~full None)
        ~docs:(if full then 12 else 8) ();
      Filtering.sustained ~subs:1000
        ~docs:(if full then 200 else 64)
        ~fault_rate:0.15 ();
      Relevance.run ();
      Micro.run ())

(* ---------------- cmdliner plumbing ---------------- *)

let full_t =
  let doc = "Use the paper's full parameter ranges (slow)." in
  Arg.(value & flag & info [ "full" ] ~doc)

let budget_t =
  let doc =
    "Baseline heap budget in MB, modelling the paper's 256 MB machine."
  in
  Arg.(value & opt int 48 & info [ "budget-mb" ] ~doc)

let runs_t =
  let doc = "Runs per document size (the paper used 10)." in
  Arg.(value & opt int 5 & info [ "runs" ] ~doc)

let scales_t =
  let doc = "Comma-separated XMark scale factors." in
  Arg.(
    value
    & opt (some (list ~sep:',' float)) None
    & info [ "scales" ] ~doc)

let sizes_t =
  let doc = "Comma-separated document sizes in elements." in
  Arg.(value & opt (some (list ~sep:',' int)) None & info [ "sizes" ] ~doc)

let ablation_scale_t =
  let doc = "XMark scale for the ablation document." in
  Arg.(value & opt float 0.02 & info [ "scale" ] ~doc)

let report_t =
  let doc = "Write results as a versioned JSON run report to $(docv)." in
  Arg.(
    value
    & opt string "BENCH_PR4.json"
    & info [ "report" ] ~docv:"FILE" ~doc)

let counts_t =
  let doc = "Comma-separated subscription-set sizes for the filtering sweep." in
  Arg.(value & opt (some (list ~sep:',' int)) None & info [ "counts" ] ~doc)

let pr5_report_t =
  let doc = "Write results as a versioned JSON run report to $(docv)." in
  Arg.(
    value
    & opt string "BENCH_PR5.json"
    & info [ "report" ] ~docv:"FILE" ~doc)

let pr5_cmd =
  Cmd.v
    (Cmd.info "pr5"
       ~doc:"Interned-symbol core gate: Figure 5 evaluation sweep plus the \
             1000-subscriber filtering point, for `xaos report diff` \
             against the committed baselines")
    Term.(const run_pr5 $ pr5_report_t $ full_t)

let pr10_report_t =
  let doc = "Write results as a versioned JSON run report to $(docv)." in
  Arg.(
    value
    & opt string "BENCH_PR10.json"
    & info [ "report" ] ~docv:"FILE" ~doc)

let pr10_cmd =
  let subs_doc = "Subscriptions drawn (with duplicates) from the pool." in
  let subs_t = Arg.(value & opt int 1000 & info [ "subs" ] ~doc:subs_doc) in
  let distinct_doc = "Distinct queries in the subscription pool." in
  let distinct_t =
    Arg.(value & opt int 50 & info [ "distinct" ] ~doc:distinct_doc)
  in
  let docs_doc = "Documents in the stream." in
  let docs_t = Arg.(value & opt int 8 & info [ "docs" ] ~doc:docs_doc) in
  Cmd.v
    (Cmd.info "pr10"
       ~doc:"Query-set compaction gate: duplicate-heavy subscription sets \
             through the naive loop, the per-subscription shared index, \
             engine-class compaction, and compaction plus the prefix gate, \
             with a differential oracle; fails below the 2x speedup bar")
    Term.(const run_pr10 $ pr10_report_t $ full_t $ subs_t $ distinct_t
          $ docs_t)

let fig5_cmd =
  Cmd.v
    (Cmd.info "fig5" ~doc:"Figure 5: time vs document size, xaos vs baseline")
    Term.(const run_fig5 $ report_t $ full_t $ budget_t $ scales_t)

let table3_cmd =
  Cmd.v
    (Cmd.info "table3" ~doc:"Table 3: elements discarded by the filter")
    Term.(const run_table3 $ report_t $ full_t $ scales_t)

let fig6_cmd =
  Cmd.v
    (Cmd.info "fig6" ~doc:"Figures 6 and 7: random expressions, overall and search time")
    Term.(const run_fig67 $ report_t $ full_t $ runs_t $ sizes_t)

let fig7_cmd =
  Cmd.v
    (Cmd.info "fig7" ~doc:"Alias of fig6 (both figures come from the same runs)")
    Term.(const run_fig67 $ report_t $ full_t $ runs_t $ sizes_t)

let ablation_cmd =
  Cmd.v
    (Cmd.info "ablation" ~doc:"Ablations: counters, relevance filter, eager emission")
    Term.(const run_ablation $ report_t $ ablation_scale_t)

let filtering_cmd =
  Cmd.v
    (Cmd.info "filtering"
       ~doc:"Extension: publish/subscribe filtering — yfilter's shared \
             automaton vs the naive per-query loop vs the shared dispatch \
             index")
    Term.(const run_filtering $ report_t $ full_t $ counts_t)

let sustained_cmd =
  let subs_doc = "Live subscriptions registered on the broker." in
  let subs_t = Arg.(value & opt int 1000 & info [ "subs" ] ~doc:subs_doc) in
  let docs_doc = "Documents in the stream." in
  let docs_t = Arg.(value & opt int 64 & info [ "docs" ] ~doc:docs_doc) in
  let rate_doc = "Chaos fault probability per document." in
  let rate_t = Arg.(value & opt float 0.15 & info [ "rate" ] ~doc:rate_doc) in
  let earliest_doc =
    "Run every subscription in earliest-decision emission mode: each \
     result streams out at its decision point, so the engine/emission \
     histogram measures decision-to-emission distance instead of \
     decision-to-end-of-document."
  in
  let earliest_t = Arg.(value & flag & info [ "earliest" ] ~doc:earliest_doc) in
  let attrib_doc =
    "Enable per-subscription cost attribution for the run; the report \
     gains the schema-v4 attribution section (totals plus the most \
     expensive accounts)."
  in
  let attrib_t = Arg.(value & flag & info [ "attrib" ] ~doc:attrib_doc) in
  Cmd.v
    (Cmd.info "sustained"
       ~doc:"Sustained service load: supervised broker docs/s against a \
             large live subscription set, clean vs a fixed chaos fault \
             rate")
    Term.(const run_sustained $ report_t $ subs_t $ docs_t $ rate_t
          $ earliest_t $ attrib_t)

let micro_cmd =
  Cmd.v
    (Cmd.info "micro" ~doc:"Bechamel micro-benchmarks, one per table/figure kernel")
    Term.(const run_micro $ report_t)

let relevance_cmd =
  Cmd.v
    (Cmd.info "relevance"
       ~doc:"Relevance-ratio sweep: peak retained bytes over bytes seen, \
             three selectivities per workload")
    Term.(const run_relevance $ report_t $ full_t $ scales_t)

let all_cmd =
  Cmd.v
    (Cmd.info "all" ~doc:"Run every experiment")
    Term.(const run_all $ report_t $ full_t)

let default_t = Term.(const run_all $ report_t $ full_t)

let () =
  let info =
    Cmd.info "xaos-bench" ~version:"1.0"
      ~doc:"Regenerates the tables and figures of the XAOS paper (ICDE 2003)"
  in
  exit
    (Cmd.eval
       (Cmd.group ~default:default_t info
          [ fig5_cmd; table3_cmd; fig6_cmd; fig7_cmd; ablation_cmd;
            filtering_cmd; sustained_cmd; relevance_cmd; micro_cmd; pr5_cmd;
            pr10_cmd; all_cmd ]))
