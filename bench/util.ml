(* Shared benchmark plumbing: wall-clock timing, memory probes, run
   statistics, fixed-width table rendering — and, since the telemetry
   layer landed, report accumulation: everything printed as a table or
   recorded as a scalar also lands in a versioned JSON run report
   (BENCH_PR2.json by default) via {!write_report}. *)

module Report = Xaos_obs.Report
module Json = Xaos_obs.Json

let time f =
  let t0 = Unix.gettimeofday () in
  let result = f () in
  (result, Unix.gettimeofday () -. t0)

let mean samples =
  match samples with
  | [] -> 0.
  | _ -> List.fold_left ( +. ) 0. samples /. float_of_int (List.length samples)

let stddev samples =
  match samples with
  | [] | [ _ ] -> 0.
  | _ ->
    let m = mean samples in
    let var =
      List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.)) 0. samples
      /. float_of_int (List.length samples - 1)
    in
    sqrt var

(* Live heap bytes after a full collection. *)
let live_bytes () =
  Gc.full_major ();
  (Gc.stat ()).Gc.live_words * (Sys.word_size / 8)

(* Run [f] while sampling the major-heap size at the end of every major
   collection cycle; returns (result, peak heap bytes seen). This is what
   "memory use" means for a streaming engine: retention between
   collections, not final live data. The probe itself lives in the
   telemetry layer (which reports words); benches keep talking bytes. *)
let with_peak_heap f =
  let result, peak_words = Xaos_obs.Telemetry.with_peak_heap f in
  (result, peak_words * (Sys.word_size / 8))

let mb bytes = float_of_int bytes /. 1048576.

(* ------------------------------------------------------------------ *)
(* Report accumulation                                                 *)
(* ------------------------------------------------------------------ *)

(* Tables and scalars accumulate here as the experiments print them; a
   single [write_report] at the end of the run emits them through the
   same schema the CLI's [--report] uses. *)

let section = ref "bench"
let tables : Report.table list ref = ref []
let scalars : (string * float) list ref = ref []
let report_path = ref "BENCH_PR2.json"

let set_report_path path = report_path := path

let record name value = scalars := (name, value) :: !scalars

let write_report () =
  let config =
    [
      ("argv", Json.List (Array.to_list (Array.map (fun s -> Json.String s) Sys.argv)));
      ("word_size", Json.Int Sys.word_size);
      ("ocaml_version", Json.String Sys.ocaml_version);
    ]
  in
  (* benches that ran with cost attribution on (sustained --attrib)
     leave it enabled so the report carries the v4 attribution section *)
  let attribution =
    if Xaos_obs.Attrib.enabled () then
      Some (Xaos_obs.Attrib.report_section ())
    else None
  in
  let report =
    Report.make ?attribution ~kind:"bench" ~config
      ~stats:(List.rev !scalars) ~tables:(List.rev !tables)
      ~gc:(Report.gc_now ())
      ~service_latency:(Xaos_obs.Histogram.summaries ()) ()
  in
  Report.write !report_path report;
  Printf.printf "\nreport: %s\n" !report_path

(* ------------------------------------------------------------------ *)
(* Table rendering                                                     *)
(* ------------------------------------------------------------------ *)

let print_header title =
  section := title;
  Printf.printf "\n=== %s ===\n" title

let print_table ~columns rows =
  tables := { Report.title = !section; columns; rows } :: !tables;
  let widths =
    List.mapi
      (fun i col ->
        List.fold_left
          (fun w row -> max w (String.length (List.nth row i)))
          (String.length col) rows)
      columns
  in
  let print_row cells =
    List.iteri
      (fun i cell -> Printf.printf "%-*s  " (List.nth widths i) cell)
      cells;
    print_newline ()
  in
  print_row columns;
  print_row (List.map (fun w -> String.make w '-') widths);
  List.iter print_row rows

let fsec t = Printf.sprintf "%.3f" t

let fsec_pm m s = Printf.sprintf "%.3f ± %.3f" m s

let fpct x = Printf.sprintf "%.2f%%" (100. *. x)

let fint n =
  (* thousands separators for readability *)
  let s = string_of_int n in
  let len = String.length s in
  let buf = Buffer.create (len + (len / 3)) in
  String.iteri
    (fun i c ->
      if i > 0 && (len - i) mod 3 = 0 then Buffer.add_char buf ',';
      Buffer.add_char buf c)
    s;
  Buffer.contents buf

let note fmt = Printf.printf ("  note: " ^^ fmt ^^ "\n")
