(* Quickstart: compile an expression once, evaluate it over documents in a
   single streaming pass each, and inspect what the engine did.

   Run with:  dune exec examples/quickstart.exe *)

open Xaos_core

(* The paper's running example: Figure 2's document ... *)
let document =
  "<X>\
   <Y><W/><Z><V/><V/><W><W/></W></Z><U/></Y>\
   <Y><Z><W/></Z><U/></Y>\
   </X>"

(* ... and Figure 3's expression: W descendants of a Y (that has a U
   child), where the W has a Z ancestor with a V child. Both backward axes
   (ancestor) and forward axes (descendant, child) in one pass. *)
let expression =
  "/descendant::Y[child::U]/descendant::W[ancestor::Z/child::V]"

let () =
  (* 1. compile: parse, expand 'or', build x-tree and x-dag *)
  let query = Query.compile_exn expression in

  (* 2. run: one depth-first pass over the document *)
  let result, stats = Query.run_string_with_stats query document in

  Format.printf "expression: %s@." expression;
  Format.printf "result:     %a@." Result_set.pp result;
  Format.printf "            (the paper's Figure 4 solution: {W7, W8})@.@.";

  (* 3. the engine only stored the relevant fraction of the document *)
  Format.printf "engine:     %a@.@." Stats.pp stats;

  (* Abbreviated syntax and attribute tests also work: *)
  let catalog =
    "<catalog><book id=\"b1\"><title>Streams</title></book>\
     <book><title>Trees</title></book></catalog>"
  in
  let titled = Query.compile_exn "//book[@id]/title" in
  let r = Query.run_string titled catalog in
  Format.printf "books with ids: %a@.@." Result_set.pp r;

  (* The same expression can be re-run over any number of documents;
     results arrive through a callback as soon as they are certain —
     [Earliest] works for every expression, backward axes included: *)
  let seen = ref 0 in
  let earliest_config =
    { Engine.default_config with emission = Engine.Earliest }
  in
  let titles = Query.compile_exn ~config:earliest_config "//title" in
  let run = Query.start ~on_match:(fun _ -> incr seen) titles in
  Query.feed_doc run (Xaos_xml.Dom.of_string catalog);
  ignore (Query.finish run);
  Format.printf "streamed %d titles through the on_match callback@." !seen
