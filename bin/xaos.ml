(* xaos — command-line front end to the streaming XPath engine.

     xaos eval '//listitem/ancestor::category//name' auctions.xml
     cat doc.xml | xaos eval --stats '//a[b]/..'
     xaos eval --lenient --partial-ok '//item//name' hostile.xml
     xaos explain '//Y[U]//W[ancestor::Z/V]'
     xaos filter subscriptions.txt doc1.xml doc2.xml
     xaos generate xmark --scale 0.01 -o auctions.xml
     xaos generate random --seed 7 --elements 50000 -o random.xml

   Exit codes: 0 success (including --partial-ok degradation), 1 query
   error, 2 I/O error, 3 ill-formed input, 4 resource limit tripped. *)

open Cmdliner
open Xaos_core
module Tel = Xaos_obs.Telemetry
module Trc = Xaos_obs.Tracer

let exit_query_error = 1

let exit_io_error = 2

let exit_ill_formed = 3

let exit_limit = 4

let die code msg =
  prerr_endline ("xaos: " ^ msg);
  exit code

let or_die_query = function
  | Ok v -> v
  | Error msg -> die exit_query_error msg

let sax_error_message pos msg =
  Format.asprintf "%a: %s" Xaos_xml.Sax.pp_position pos msg

let limit_message pos kind bound =
  Format.asprintf "%a: input exceeds %s = %d" Xaos_xml.Sax.pp_position pos
    (Xaos_xml.Sax.limit_kind_name kind)
    bound

(* Open the document source, hand the parser to [f], and close the channel
   on every path. A missing or unreadable file is an I/O error (exit 2),
   not an uncaught Sys_error backtrace. *)
let with_source ?limits ?mode ?on_fault file f =
  match file with
  | None -> f (Xaos_xml.Sax.of_channel ?limits ?mode ?on_fault stdin)
  | Some path ->
    let ic =
      try open_in_bin path with Sys_error msg -> die exit_io_error msg
    in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> f (Xaos_xml.Sax.of_channel ?limits ?mode ?on_fault ic))

(* Read the whole document as an event list, each event stamped with the
   parser position just past its token — shared by trace and why, which
   replay the same events once per disjunct. *)
let collect_positioned_events ?limits ?mode ?on_fault file =
  with_source ?limits ?mode ?on_fault file (fun parser ->
      let rec loop acc =
        match Xaos_xml.Sax.next parser with
        | None -> List.rev acc
        | Some ev ->
          loop ((ev, Some (Xaos_xml.Sax.position parser)) :: acc)
        | exception Xaos_xml.Sax.Error (pos, msg) ->
          die exit_ill_formed (sax_error_message pos msg)
        | exception Xaos_xml.Sax.Limit_exceeded (pos, kind, bound) ->
          die exit_limit (limit_message pos kind bound)
      in
      loop [])

(* ------------------------------------------------------------------ *)
(* Hardening options shared by eval and filter                         *)
(* ------------------------------------------------------------------ *)

type hardening = {
  lenient : bool;
  partial_ok : bool;
  limits : Xaos_xml.Sax.limits;
  budget : int option;
}

let make_hardening lenient partial_ok max_depth max_bytes max_structures =
  let limits =
    {
      Xaos_xml.Sax.default_limits with
      max_depth =
        Option.value max_depth
          ~default:Xaos_xml.Sax.default_limits.Xaos_xml.Sax.max_depth;
      max_input_bytes =
        Option.value max_bytes
          ~default:Xaos_xml.Sax.default_limits.Xaos_xml.Sax.max_input_bytes;
    }
  in
  { lenient; partial_ok; limits; budget = max_structures }

let parse_mode h = if h.lenient then Xaos_xml.Sax.Lenient else Xaos_xml.Sax.Strict

(* Outcome of streaming one document through a query run. *)
type stream_outcome =
  | Complete
  | Failed of int * string  (* exit code, message *)

(* Whole-run wall clock, shared by --stats, --report and --metrics. *)
let span_run =
  Tel.span ~help:"wall-clock time of the whole streaming run"
    "xaos_run_seconds"

(* Stream every event into the run. With [series], also record a
   snapshot time series over document bytes: a cheap due-check per event,
   plus one final point on every outcome so the series is never empty.
   When the provenance tracer is on, each event's parser position is
   threaded in first so lifecycle events carry document offsets. *)
let stream_document ?series run parser =
  let tracing = Xaos_obs.Tracer.enabled () in
  let events = ref 0 in
  let sample s =
    Xaos_obs.Snapshot.sample s
      ~bytes:(Xaos_xml.Sax.bytes_read parser)
      ~events:!events
      ~depth:(Xaos_xml.Sax.depth parser)
      ~live:(Query.live_structures run)
      ~looking_for:(Query.looking_for_size run)
      ~retained_bytes:(Query.retained_bytes run)
  in
  let outcome =
    try
      (match series with
      | None when not tracing -> Xaos_xml.Sax.iter (Query.feed run) parser
      | _ ->
        let rec loop () =
          match Xaos_xml.Sax.next parser with
          | None -> ()
          | Some ev ->
            if tracing then begin
              let p = Xaos_xml.Sax.position parser in
              Xaos_obs.Tracer.set_position ~byte:p.Xaos_xml.Sax.offset
                ~line:p.Xaos_xml.Sax.line
            end;
            Query.feed run ev;
            incr events;
            (match series with
            | Some s
              when Xaos_obs.Snapshot.due s
                     ~bytes:(Xaos_xml.Sax.bytes_read parser) ->
              sample s
            | Some _ | None -> ());
            loop ()
        in
        loop ());
      Complete
    with
    | Xaos_xml.Sax.Error (pos, msg) ->
      Failed (exit_ill_formed, sax_error_message pos msg)
    | Xaos_xml.Sax.Limit_exceeded (pos, kind, bound) ->
      Failed (exit_limit, limit_message pos kind bound)
    | Engine.Budget_exceeded { live; budget } ->
      Failed
        ( exit_limit,
          Printf.sprintf "engine budget exceeded: %d live structures (cap %d)"
            live budget )
  in
  (match series with Some s -> sample s | None -> ());
  outcome

(* ------------------------------------------------------------------ *)
(* eval                                                                *)
(* ------------------------------------------------------------------ *)

type engine_kind =
  | Streaming
  | Dom
  | Dom_dedup

let config_of ~eager ~earliest ~no_filter ~no_counters =
  if eager && earliest then
    die exit_query_error "--eager and --earliest are mutually exclusive";
  {
    Engine.boolean_subtrees = not no_counters;
    relevance_filter = not no_filter;
    emission =
      (if earliest then Engine.Earliest
       else if eager then Engine.Eager
       else Engine.Deferred);
  }

let print_items items =
  List.iter (fun i -> Format.printf "%a@." Item.pp i) items

let eval_report ~query ~file ~h ~eager ~earliest ~no_filter ~no_counters
    ~stats ~result ~run ~series ~wall_s ~peak_heap_words ~bytes_seen path =
  let open Xaos_obs in
  let config =
    [
      ("query", Json.String query);
      ("file", match file with Some f -> Json.String f | None -> Json.Null);
      ("engine", Json.String "xaos");
      ("eager", Json.Bool eager);
      ("earliest", Json.Bool earliest);
      ("no_filter", Json.Bool no_filter);
      ("no_counters", Json.Bool no_counters);
      ("lenient", Json.Bool h.lenient);
      ("partial_ok", Json.Bool h.partial_ok);
      ("max_depth", Json.Int h.limits.Xaos_xml.Sax.max_depth);
      ( "max_input_bytes",
        Json.Int h.limits.Xaos_xml.Sax.max_input_bytes );
      ( "budget",
        match h.budget with Some b -> Json.Int b | None -> Json.Null );
    ]
  in
  let stats_fields =
    List.map (fun (k, v) -> (k, float_of_int v)) (Stats.to_fields stats)
    @ [
        ("discarded_fraction", Stats.discarded_fraction stats);
        ("results", float_of_int (List.length result.Result_set.items));
        ( "retained_structures",
          float_of_int (Query.retained_structures run) );
        ("wall_s", wall_s);
        ("peak_heap_words", float_of_int peak_heap_words);
      ]
  in
  let relevance =
    Report.relevance_of ~bytes_seen
      ~retained_bytes:stats.Stats.retained_bytes
      ~retained_peak_bytes:stats.Stats.retained_peak_bytes
      ~elements_total:stats.Stats.elements_total
      ~elements_stored:stats.Stats.elements_stored
  in
  let report =
    Report.make ~kind:"eval" ~config ~stats:stats_fields
      ~spans:(Tel.span_summaries ())
      ~snapshots:(Snapshot.points series)
      ~gc:(Report.gc_now ()) ~relevance ()
  in
  try Report.write path report with Sys_error msg -> die exit_io_error msg

let eval_cmd query file engine_kind eager earliest no_filter no_counters
    stats_flag count_only tuples_flag report metrics trace_out trace_capacity
    snapshot_interval hardening =
  let h = hardening in
  let config = config_of ~eager ~earliest ~no_filter ~no_counters in
  (match engine_kind, report, metrics, trace_out with
  | (Dom | Dom_dedup), Some _, _, _
  | (Dom | Dom_dedup), _, Some _, _
  | (Dom | Dom_dedup), _, _, Some _ ->
    die exit_query_error
      "--report, --metrics and --trace-out require the streaming engine \
       (--engine xaos)"
  | _ -> ());
  match engine_kind with
  | Streaming ->
    (* --stats, --report and --metrics all draw from the telemetry sink;
       plain runs leave it disabled (the hook points are no-ops). The
       provenance tracer is a separate ring, enabled only by --trace-out. *)
    let telemetry = stats_flag || report <> None || metrics <> None in
    if telemetry then begin
      Tel.reset ();
      Tel.enable ()
    end;
    if trace_out <> None then Trc.enable ~capacity:trace_capacity ();
    Trc.phase_begin "compile";
    let q = or_die_query (Query.compile ~config query) in
    Trc.phase_end "compile";
    let faults = ref 0 in
    (* --earliest: results are printed by the engine's callback the
       moment each is decided, and the deferred result set (computed
       anyway) is compared against what was streamed — the CLI is its
       own differential check. *)
    let streamed = ref [] in
    let on_match =
      if not earliest then None
      else
        Some
          (fun (it : Item.t) ->
            streamed := it :: !streamed;
            if not count_only then Format.printf "%a@." Item.pp it)
    in
    let run = Query.start ?on_match ?budget:h.budget q in
    (* --metrics streams each snapshot point as one NDJSON line during
       the run, then appends the Prometheus exposition at exit — so the
       sink is opened before streaming starts. *)
    let metrics_sink =
      match metrics with
      | None -> None
      | Some path when String.equal path "-" -> Some (stdout, false)
      | Some path -> (
        try Some (open_out path, true)
        with Sys_error msg -> die exit_io_error msg)
    in
    let series =
      match report, metrics_sink with
      | None, None -> None
      | _ ->
        let on_point =
          Option.map
            (fun (oc, _) (p : Xaos_obs.Snapshot.point) ->
              output_string oc
                (Xaos_obs.Json.to_string ~indent:false
                   (Xaos_obs.Report.point_to_json p));
              output_char oc '\n')
            metrics_sink
        in
        Some
          (Xaos_obs.Snapshot.create ~interval_bytes:snapshot_interval
             ?on_point ())
    in
    let bytes_seen = ref 0 in
    let stream () =
      Tel.enter span_run;
      Trc.phase_begin "stream";
      let outcome =
        with_source ~limits:h.limits ~mode:(parse_mode h)
          ~on_fault:(fun _ -> incr faults)
          file
          (fun parser ->
            let outcome = stream_document ?series run parser in
            bytes_seen := Xaos_xml.Sax.bytes_read parser;
            outcome)
      in
      Trc.phase_end "stream";
      Tel.leave span_run;
      outcome
    in
    let outcome, peak_heap_words =
      if telemetry then Tel.with_peak_heap stream else (stream (), 0)
    in
    let wall_s = (Tel.span_summary span_run).Tel.total_s in
    Trc.phase_begin "finish";
    let result =
      match outcome with
      | Complete -> Query.finish run
      | Failed (code, msg) ->
        if h.partial_ok then begin
          Format.eprintf "xaos: %s; reporting partial results@." msg;
          Query.finish_partial run
        end
        else die code msg
    in
    Trc.phase_end "finish";
    if earliest then begin
      (* every item must have come through the callback, in document
         order, exactly once — fail loudly if the two paths disagree *)
      let ids l = List.map (fun (i : Item.t) -> i.Item.id) l in
      if ids (List.rev !streamed) <> ids result.Result_set.items then
        die exit_ill_formed
          (Printf.sprintf
             "internal: earliest emission streamed %d items but the result \
              set holds %d (or order differs)"
             (List.length !streamed)
             (List.length result.Result_set.items))
    end;
    if count_only then
      Format.printf "%d@." (List.length result.Result_set.items)
    else if not earliest then print_items result.Result_set.items;
    (if tuples_flag then
       match result.Result_set.tuples with
       | None -> ()
       | Some tuples ->
         List.iter
           (fun tuple ->
             Format.printf "(%a)@."
               (Format.pp_print_array
                  ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
                  Item.pp)
               tuple)
           tuples);
    let stats = Query.run_stats run in
    stats.Stats.parse_faults <- !faults;
    if stats_flag then
      Format.eprintf "%a; wall: %.3f s; peak heap: %d words@." Stats.pp stats
        wall_s peak_heap_words;
    (match report with
    | None -> ()
    | Some path ->
      let series = Option.get series in
      eval_report ~query ~file ~h ~eager ~earliest ~no_filter ~no_counters
        ~stats ~result ~run ~series ~wall_s ~peak_heap_words
        ~bytes_seen:!bytes_seen path);
    (match metrics_sink with
    | None -> ()
    | Some (oc, close) ->
      (* full exposition: the telemetry registry plus every latency
         histogram (e.g. [engine/emission]) *)
      output_string oc (Xaos_obs.Expose.render ());
      if close then close_out_noerr oc else flush oc);
    (match trace_out with
    | None -> ()
    | Some path -> (
      Trc.disable ();
      try Trc.write_chrome path with Sys_error msg -> die exit_io_error msg))
  | Dom | Dom_dedup ->
    let path =
      match Xaos_xpath.Parser.parse_result query with
      | Ok p -> p
      | Error msg -> die exit_query_error msg
    in
    let doc =
      with_source ~limits:h.limits ~mode:(parse_mode h) file (fun parser ->
          try Xaos_xml.Dom.of_sax parser with
          | Xaos_xml.Sax.Error (pos, msg) ->
            die exit_ill_formed (sax_error_message pos msg)
          | Xaos_xml.Sax.Limit_exceeded (pos, kind, bound) ->
            die exit_limit (limit_message pos kind bound))
    in
    let dedup = engine_kind = Dom_dedup in
    let items, counters =
      Xaos_baseline.Dom_engine.eval_with_counters ~dedup doc path
    in
    if count_only then Format.printf "%d@." (List.length items)
    else print_items items;
    if stats_flag then
      Format.eprintf "nodes visited: %d; predicate evaluations: %d@."
        counters.Xaos_baseline.Dom_engine.nodes_visited
        counters.Xaos_baseline.Dom_engine.predicate_evaluations

(* ------------------------------------------------------------------ *)
(* explain                                                             *)
(* ------------------------------------------------------------------ *)

let explain_cmd query =
  let path =
    match Xaos_xpath.Parser.parse_result query with
    | Ok p -> p
    | Error msg -> die exit_query_error msg
  in
  Format.printf "expression:  %s@." (Xaos_xpath.Ast.to_string path);
  Format.printf "node tests:  %d@." (Xaos_xpath.Ast.step_count path);
  Format.printf "backward:    %b@." (Xaos_xpath.Ast.uses_backward_axis path);
  let disjuncts =
    or_die_query (Xaos_xpath.Dnf.expand_bounded ~limit:64 path)
  in
  List.iteri
    (fun i disjunct ->
      if List.length disjuncts > 1 then
        Format.printf "@.-- disjunct %d: %s@." (i + 1)
          (Xaos_xpath.Ast.to_string disjunct);
      let xtree = Xaos_xpath.Xtree.of_path disjunct in
      Format.printf "@.x-tree:@.%a" Xaos_xpath.Xtree.pp xtree;
      match Xaos_xpath.Xdag.of_xtree xtree with
      | dag ->
        Format.printf "@.x-dag:@.%a" Xaos_xpath.Xdag.pp dag;
        (match Xaos_xpath.Xdag.join_points dag with
        | [] -> Format.printf "join points: none (x-dag is a tree)@."
        | points ->
          Format.printf "join points: %a@."
            (Format.pp_print_list
               ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
               Format.pp_print_int)
            points);
        let engine = Engine.create dag in
        Format.printf "eager-capable: %b@." (Engine.emits_eagerly engine)
      | exception Xaos_xpath.Xdag.Unsatisfiable ->
        Format.printf
          "@.unsatisfiable: reversal creates a cycle (e.g. an ancestor of \
           the root); this disjunct never matches@.")
    disjuncts

(* ------------------------------------------------------------------ *)
(* trace                                                               *)
(* ------------------------------------------------------------------ *)

let default_trace_limit = 200

let trace_cmd query file limit =
  let path =
    match Xaos_xpath.Parser.parse_result query with
    | Ok p -> p
    | Error msg -> die exit_query_error msg
  in
  let disjuncts =
    or_die_query (Xaos_xpath.Dnf.expand_bounded ~limit:16 path)
  in
  let events = collect_positioned_events file in
  List.iteri
    (fun i disjunct ->
      if List.length disjuncts > 1 then
        Format.printf "@.-- disjunct %d: %s@.@." (i + 1)
          (Xaos_xpath.Ast.to_string disjunct);
      let xtree = Xaos_xpath.Xtree.of_path disjunct in
      match Xaos_xpath.Xdag.of_xtree xtree with
      | dag ->
        let trace = Trace.run_positioned dag events in
        let truncated =
          match limit with
          | Some n when List.length trace.Trace.steps > n ->
            Some { trace with Trace.steps = List.filteri (fun i _ -> i < n) trace.Trace.steps }
          | _ -> None
        in
        (match truncated with
        | Some t ->
          Format.printf "%a" (Trace.pp ~xtree) t;
          let lim = Option.get limit in
          Format.printf
            "... (%d more steps not shown; --limit is %d, default %d; \
             raise it or pass --limit 0 for all)@."
            (List.length trace.Trace.steps - lim)
            lim default_trace_limit
        | None -> Format.printf "%a" (Trace.pp ~xtree) trace)
      | exception Xaos_xpath.Xdag.Unsatisfiable ->
        Format.printf "unsatisfiable disjunct; no trace@.")
    disjuncts

(* ------------------------------------------------------------------ *)
(* why (causal provenance of result items)                             *)
(* ------------------------------------------------------------------ *)

let label_of (xtree : Xaos_xpath.Xtree.t) v =
  if v < 0 || v >= Array.length xtree.Xaos_xpath.Xtree.nodes then "?"
  else
    Format.asprintf "%a" Xaos_xpath.Xtree.pp_label
      xtree.Xaos_xpath.Xtree.nodes.(v).Xaos_xpath.Xtree.label

(* Render one provenance chain, emission first, climbing the surviving
   placements toward the root. *)
let print_chain xtree (item : Item.t) =
  match Trc.provenance ~item_id:item.Item.id with
  | [] ->
    Format.printf
      "%a: no retained provenance (raise the ring capacity?)@." Item.pp item
  | chain ->
    Format.printf "%a@." Item.pp item;
    List.iter
      (fun (e : Trc.event) ->
        let pos ppf () =
          if e.Trc.byte >= 0 then
            Format.fprintf ppf " at byte %d (line %d)" e.Trc.byte e.Trc.line
        in
        match e.Trc.kind with
        | Trc.Emitted _ ->
          Format.printf "  emitted%a by structure #%d@." pos () e.Trc.serial
        | Trc.Created { parent_serial } ->
          let witness =
            if parent_serial = 0 then ", witnessed by the root"
            else if parent_serial > 0 then
              Printf.sprintf ", witnessed by #%d" parent_serial
            else ""
          in
          let survived =
            match Trc.undos_survived ~serial:e.Trc.serial with
            | 0 -> ""
            | 1 -> ", survived 1 undo"
            | n -> Printf.sprintf ", survived %d undos" n
          in
          Format.printf "  structure #%d at x-node %s created%a for %s@%d%s%s@."
            e.Trc.serial
            (label_of xtree e.Trc.xnode)
            pos () e.Trc.tag e.Trc.level witness survived
        | Trc.Propagated { target_serial; optimistic } ->
          let target =
            if target_serial = 0 then "the root structure"
            else
              match Trc.creation ~serial:target_serial with
              | Some c ->
                Printf.sprintf "#%d at %s" target_serial
                  (label_of xtree c.Trc.xnode)
              | None -> Printf.sprintf "#%d" target_serial
          in
          Format.printf "  #%d propagated%s into %s%a@." e.Trc.serial
            (if optimistic then " optimistically" else "")
            target pos ()
        | Trc.Undone _ | Trc.Refuted | Trc.Phase _ -> ())
      chain

let why_cmd query file item_sel =
  let path =
    match Xaos_xpath.Parser.parse_result query with
    | Ok p -> p
    | Error msg -> die exit_query_error msg
  in
  let disjuncts =
    or_die_query (Xaos_xpath.Dnf.expand_bounded ~limit:16 path)
  in
  let events = collect_positioned_events (Some file) in
  List.iteri
    (fun i disjunct ->
      if List.length disjuncts > 1 then
        Format.printf "@.-- disjunct %d: %s@." (i + 1)
          (Xaos_xpath.Ast.to_string disjunct);
      let xtree = Xaos_xpath.Xtree.of_path disjunct in
      match Xaos_xpath.Xdag.of_xtree xtree with
      | exception Xaos_xpath.Xdag.Unsatisfiable ->
        Format.printf "unsatisfiable disjunct; nothing to explain@."
      | dag ->
        (* serials and causal ids are per engine run, so each disjunct
           gets a fresh ring *)
        Trc.enable ();
        let engine = Engine.create dag in
        let result =
          Fun.protect
            ~finally:(fun () -> Trc.disable ())
            (fun () ->
              List.iter
                (fun (ev, pos) ->
                  (match pos with
                  | Some (p : Xaos_xml.Sax.position) ->
                    Trc.set_position ~byte:p.Xaos_xml.Sax.offset
                      ~line:p.Xaos_xml.Sax.line
                  | None -> ());
                  Engine.feed engine ev)
                events;
              Engine.finish engine)
        in
        let items =
          match item_sel with
          | None -> result.Result_set.items
          | Some id ->
            List.filter
              (fun (it : Item.t) -> it.Item.id = id)
              result.Result_set.items
        in
        if items = [] then
          Format.printf "no result items%s@."
            (match item_sel with
            | Some id -> Printf.sprintf " with element id %d" id
            | None -> "")
        else List.iter (print_chain xtree) items)
    disjuncts

(* ------------------------------------------------------------------ *)
(* filter (publish/subscribe)                                          *)
(* ------------------------------------------------------------------ *)

let filter_cmd subscriptions_file docs shared earliest hardening =
  let h = hardening in
  let subscriptions =
    let ic =
      try open_in subscriptions_file
      with Sys_error msg -> die exit_io_error msg
    in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let rec loop acc =
          match input_line ic with
          | line ->
            let line = String.trim line in
            if String.length line = 0 || line.[0] = '#' then loop acc
            else loop (line :: acc)
          | exception End_of_file -> List.rev acc
        in
        loop [])
  in
  (* names must be unique (the same expression may be subscribed twice),
     so queries are named by position; compile errors carry both *)
  let set =
    let config =
      if earliest then
        Some { Engine.default_config with emission = Engine.Earliest }
      else None
    in
    or_die_query
      (Query_set.compile ?config
         (List.mapi
            (fun i q -> (Printf.sprintf "#%d (%s)" (i + 1) q, q))
            subscriptions))
  in
  let dispatch = if shared then Query_set.Shared else Query_set.Naive in
  let exit_code = ref 0 in
  List.iter
    (fun doc_file ->
      (* one pass over the document feeds every subscription. Under
         --earliest each result is also pushed mid-stream; the printed
         verdicts stay byte-identical to the deferred mode and the
         streamed counts are checked against them below. *)
      let streamed : (string, int) Hashtbl.t = Hashtbl.create 16 in
      let on_item =
        if not earliest then None
        else
          Some
            (fun ~name (_ : Item.t) ->
              Hashtbl.replace streamed name
                (1 + Option.value ~default:0 (Hashtbl.find_opt streamed name)))
      in
      let session = Query_set.start ?budget:h.budget ~dispatch ?on_item set in
      (* unlike eval, a failing document must not abort the whole batch:
         report it, pick the right exit code, move on. A budget trip is
         not a document failure at all any more — the session isolates it
         to the offending run *)
      let outcome =
        match open_in_bin doc_file with
        | exception Sys_error msg -> Failed (exit_io_error, msg)
        | ic ->
          Fun.protect
            ~finally:(fun () -> close_in_noerr ic)
            (fun () ->
              let parser =
                Xaos_xml.Sax.of_channel ~limits:h.limits ~mode:(parse_mode h)
                  ic
              in
              try
                Xaos_xml.Sax.iter (Query_set.feed session) parser;
                Complete
              with
              | Xaos_xml.Sax.Error (pos, msg) ->
                Failed (exit_ill_formed, sax_error_message pos msg)
              | Xaos_xml.Sax.Limit_exceeded (pos, kind, bound) ->
                Failed (exit_limit, limit_message pos kind bound))
      in
      let outcomes =
        match outcome with
        | Complete ->
          let outcomes = Query_set.finish session in
          List.iter
            (fun (o : Query_set.outcome) ->
              if o.aborted then
                if h.partial_ok then
                  Format.eprintf
                    "%s: %s: engine budget exceeded; using partial verdict@."
                    doc_file o.query_name
                else begin
                  Format.eprintf "%s: %s: engine budget exceeded@." doc_file
                    o.query_name;
                  if !exit_code = 0 then exit_code := exit_limit
                end)
            outcomes;
          outcomes
        | Failed (code, msg) ->
          if h.partial_ok then
            Format.eprintf "%s: %s; using partial verdicts@." doc_file msg
          else begin
            Format.eprintf "%s: %s@." doc_file msg;
            if !exit_code = 0 then exit_code := code
          end;
          Query_set.finish_partial session
      in
      if earliest then
        (* the mid-stream deliveries and the final outcomes are two
           paths to the same answer; any disagreement is an engine bug *)
        List.iter
          (fun (o : Query_set.outcome) ->
            let got =
              Option.value ~default:0 (Hashtbl.find_opt streamed o.query_name)
            in
            if got <> List.length o.items then
              die exit_ill_formed
                (Printf.sprintf
                   "internal: %s: %s streamed %d items but finished with %d"
                   doc_file o.query_name got (List.length o.items)))
          outcomes;
      List.iter2
        (fun q (o : Query_set.outcome) ->
          Format.printf "%s\t%s\t%s@." doc_file
            (if o.items <> [] then "MATCH" else "-")
            q)
        subscriptions outcomes)
    docs;
  exit !exit_code

(* ------------------------------------------------------------------ *)
(* report (inspect/validate machine-readable run reports)              *)
(* ------------------------------------------------------------------ *)

let report_validate_cmd path =
  let contents =
    match
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    with
    | contents -> contents
    | exception Sys_error msg -> die exit_io_error msg
  in
  let json =
    match Xaos_obs.Json.parse contents with
    | Ok json -> json
    | Error msg -> die exit_ill_formed (path ^ ": " ^ msg)
  in
  match Xaos_obs.Report.validate json with
  | Error msg -> die exit_ill_formed (path ^ ": " ^ msg)
  | Ok () ->
    (* validate implies of_json succeeds *)
    let r = Result.get_ok (Xaos_obs.Report.of_json json) in
    Format.printf
      "%s: valid run report (schema v%d, kind %s, %d stats, %d spans, %d \
       snapshots, %d tables)@."
      path r.Xaos_obs.Report.version r.Xaos_obs.Report.kind
      (List.length r.Xaos_obs.Report.stats)
      (List.length r.Xaos_obs.Report.spans)
      (List.length r.Xaos_obs.Report.snapshots)
      (List.length r.Xaos_obs.Report.tables)

(* Stats where a larger value is a regression: timings, space, GC churn.
   Monotone work counters (events, propagations) legitimately grow with
   the workload and are reported but never fail the diff. *)
let worse_when_larger name =
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec at i = i + m <= n && (String.sub s i m = sub || at (i + 1)) in
    at 0
  in
  String.ends_with ~suffix:"_s" name
  || String.ends_with ~suffix:"_bytes" name
  || String.ends_with ~suffix:"_words" name
  || contains name "peak"

let report_diff_cmd old_path new_path threshold_pct =
  let load path =
    match Xaos_obs.Report.read path with
    | Ok r -> r
    | Error msg -> die exit_ill_formed (path ^ ": " ^ msg)
  in
  let old_r = load old_path and new_r = load new_path in
  if old_r.Xaos_obs.Report.version <> new_r.Xaos_obs.Report.version then
    Format.printf "note: comparing schema v%d against v%d@."
      old_r.Xaos_obs.Report.version new_r.Xaos_obs.Report.version;
  let old_stats = old_r.Xaos_obs.Report.stats
  and new_stats = new_r.Xaos_obs.Report.stats in
  let regressions = ref [] in
  Format.printf "%-28s %14s %14s %10s@." "stat" "old" "new" "delta";
  List.iter
    (fun (name, ov) ->
      match List.assoc_opt name new_stats with
      | None -> Format.printf "%-28s %14g %14s@." name ov "(dropped)"
      | Some nv ->
        let pct =
          if ov <> 0. then Some ((nv -. ov) /. Float.abs ov *. 100.)
          else None
        in
        let regressed =
          worse_when_larger name
          &&
          match pct with
          | Some pct -> pct > threshold_pct
          | None -> nv > 0.
        in
        if regressed then regressions := name :: !regressions;
        Format.printf "%-28s %14g %14g %9s%%%s@." name ov nv
          (match pct with
          | Some pct -> Printf.sprintf "%+.1f" pct
          | None -> "n/a")
          (if regressed then "  !" else ""))
    old_stats;
  List.iter
    (fun (name, nv) ->
      if not (List.mem_assoc name old_stats) then
        Format.printf "%-28s %14s %14g@." name "(new)" nv)
    new_stats;
  (* schema v3 service-latency sections: compare the key quantiles per
     histogram when both reports carry them. Quantile stats already
     present in the flat [stats] list (service reports embed them there
     too) are skipped — one verdict per number. *)
  let old_lat = old_r.Xaos_obs.Report.service_latency
  and new_lat = new_r.Xaos_obs.Report.service_latency in
  if old_lat <> [] && new_lat <> [] then
    List.iter
      (fun (os : Xaos_obs.Histogram.summary) ->
        match
          List.find_opt
            (fun (ns : Xaos_obs.Histogram.summary) ->
              ns.Xaos_obs.Histogram.s_name = os.Xaos_obs.Histogram.s_name)
            new_lat
        with
        | None -> ()
        | Some ns ->
          let unit_suffix =
            match os.Xaos_obs.Histogram.s_unit with
            | "" -> ""
            | u -> "_" ^ u
          in
          List.iter
            (fun (q, ov, nv) ->
              let name =
                os.Xaos_obs.Histogram.s_name ^ "_" ^ q ^ unit_suffix
              in
              if not (List.mem_assoc name old_stats) then begin
                let pct =
                  if ov <> 0. then Some ((nv -. ov) /. Float.abs ov *. 100.)
                  else None
                in
                let regressed =
                  (* latency: larger is always worse *)
                  match pct with
                  | Some pct -> pct > threshold_pct
                  | None -> nv > 0.
                in
                if regressed then regressions := name :: !regressions;
                Format.printf "%-28s %14g %14g %9s%%%s@." name ov nv
                  (match pct with
                  | Some pct -> Printf.sprintf "%+.1f" pct
                  | None -> "n/a")
                  (if regressed then "  !" else "")
              end)
            [ ("p50", os.Xaos_obs.Histogram.s_p50, ns.Xaos_obs.Histogram.s_p50);
              ("p99", os.Xaos_obs.Histogram.s_p99, ns.Xaos_obs.Histogram.s_p99)
            ])
      old_lat;
  (* optional sections may legitimately be absent on one side — e.g. a
     v3 baseline against a v4 report, or attribution recorded in only
     one run. Skip with a note; only both-sided sections gate. *)
  let skip_note section side =
    Format.printf "note: skipping %s (absent in %s)@." section side
  in
  if old_lat = [] && new_lat <> [] then skip_note "service_latency" "baseline"
  else if old_lat <> [] && new_lat = [] then skip_note "service_latency" "new";
  (match
     ( old_r.Xaos_obs.Report.attribution,
       new_r.Xaos_obs.Report.attribution )
   with
  | None, None -> ()
  | None, Some _ -> skip_note "attribution" "baseline"
  | Some _, None -> skip_note "attribution" "new"
  | Some oa, Some na ->
    let open Xaos_obs.Report in
    List.iter
      (fun (name, ov, nv) ->
        let pct =
          if ov <> 0. then Some ((nv -. ov) /. Float.abs ov *. 100.)
          else None
        in
        let regressed =
          worse_when_larger name
          &&
          match pct with
          | Some pct -> pct > threshold_pct
          | None -> nv > 0.
        in
        if regressed then regressions := name :: !regressions;
        Format.printf "%-28s %14g %14g %9s%%%s@." name ov nv
          (match pct with
          | Some pct -> Printf.sprintf "%+.1f" pct
          | None -> "n/a")
          (if regressed then "  !" else ""))
      [ ("attribution/subscriptions",
         float_of_int oa.at_subscriptions,
         float_of_int na.at_subscriptions);
        ("attribution/docs", float_of_int oa.at_docs,
         float_of_int na.at_docs);
        ("attribution/events", float_of_int oa.at_events,
         float_of_int na.at_events);
        ("attribution/match_s", oa.at_match_s, na.at_match_s);
        ("attribution/structures", float_of_int oa.at_structures,
         float_of_int na.at_structures);
        ("attribution/emissions", float_of_int oa.at_emissions,
         float_of_int na.at_emissions);
        ("attribution/faults", float_of_int oa.at_faults,
         float_of_int na.at_faults) ]);
  match !regressions with
  | [] -> Format.printf "no regressions above %g%%@." threshold_pct
  | names ->
    Format.printf "REGRESSION (> %g%%): %s@." threshold_pct
      (String.concat ", " (List.rev names));
    exit 1

let report_command =
  let path =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"REPORT.json")
  in
  let old_path =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"OLD.json")
  in
  let new_path =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"NEW.json")
  in
  let threshold =
    Arg.(value & opt float 10.
         & info [ "threshold-pct" ] ~docv:"PCT"
             ~doc:"Regression tolerance: fail when a timing/space stat \
                   grows by more than $(docv) percent (default 10).")
  in
  Cmd.group
    (Cmd.info "report" ~doc:"Machine-readable run reports")
    [
      Cmd.v
        (Cmd.info "validate"
           ~doc:"Check that a file is a well-formed run report of the \
                 current schema (exit 0 if valid, 3 otherwise)")
        Term.(const report_validate_cmd $ path);
      Cmd.v
        (Cmd.info "diff"
           ~doc:"Compare the stats of two run reports (any readable \
                 schema versions); exit 1 when a timing or space stat \
                 regressed beyond --threshold-pct")
        Term.(const report_diff_cmd $ old_path $ new_path $ threshold);
    ]

(* ------------------------------------------------------------------ *)
(* generate                                                            *)
(* ------------------------------------------------------------------ *)

let with_output output f =
  match output with
  | None -> f stdout
  | Some file ->
    let oc =
      try open_out_bin file with Sys_error msg -> die exit_io_error msg
    in
    Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> f oc)

let generate_xmark scale seed output =
  let cfg = Xaos_workloads.Xmark.config ?seed scale in
  with_output output (fun oc ->
      let buf = Buffer.create 65536 in
      let count =
        Xaos_workloads.Xmark.generate cfg (fun ev ->
            Xaos_xml.Serialize.event_to_buffer buf ev;
            if Buffer.length buf >= 65536 then begin
              Buffer.output_buffer oc buf;
              Buffer.clear buf
            end)
      in
      Buffer.output_buffer oc buf;
      Format.eprintf "generated %d elements at scale %g@." count scale)

let generate_random seed elements output query_out =
  let spec = Xaos_workloads.Randgen.generate_spec ~seed () in
  let query = Xaos_xpath.Ast.to_string spec.Xaos_workloads.Randgen.query in
  (match query_out with
  | None -> Format.eprintf "query: %s@." query
  | Some file ->
    let oc =
      try open_out file with Sys_error msg -> die exit_io_error msg
    in
    output_string oc (query ^ "\n");
    close_out oc);
  with_output output (fun oc ->
      let buf = Buffer.create 65536 in
      let count =
        Xaos_workloads.Randgen.document spec ~seed:(seed * 31) ~elements
          (fun ev ->
            Xaos_xml.Serialize.event_to_buffer buf ev;
            if Buffer.length buf >= 65536 then begin
              Buffer.output_buffer oc buf;
              Buffer.clear buf
            end)
      in
      Buffer.output_buffer oc buf;
      Format.eprintf "generated %d elements@." count)

(* ------------------------------------------------------------------ *)
(* cmdliner terms                                                      *)
(* ------------------------------------------------------------------ *)

let query_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"QUERY")

let file_arg =
  Arg.(value & pos 1 (some string) None & info [] ~docv:"FILE"
         ~doc:"XML document; stdin when omitted.")

let engine_arg =
  let kinds =
    [ ("xaos", Streaming); ("dom", Dom); ("dom-dedup", Dom_dedup) ]
  in
  Arg.(value & opt (enum kinds) Streaming
       & info [ "engine" ] ~docv:"ENGINE"
           ~doc:"$(b,xaos) (streaming), $(b,dom) (Xalan-like baseline) or \
                 $(b,dom-dedup) (baseline with per-step node-set merging).")

let flag names doc = Arg.(value & flag & info names ~doc)

let hardening_term =
  let lenient =
    flag [ "lenient" ]
      "Recover from ill-formed XML (auto-close mismatched tags, drop \
       duplicate attributes, skip stray markup) instead of failing; \
       recoveries are counted in --stats."
  in
  let partial_ok =
    flag [ "partial-ok" ]
      "On truncated or limit-tripping input, exit 0 with the results \
       already certain at the failure point instead of a nonzero exit."
  in
  let max_depth =
    Arg.(value & opt (some int) None
         & info [ "max-depth" ] ~docv:"N"
             ~doc:"Maximum element nesting depth (default 10000).")
  in
  let max_bytes =
    Arg.(value & opt (some int) None
         & info [ "max-bytes" ] ~docv:"N"
             ~doc:"Maximum input bytes to consume (default unlimited).")
  in
  let max_structures =
    Arg.(value & opt (some int) None
         & info [ "max-structures" ] ~docv:"N"
             ~doc:"Cap on live matching structures per disjunct engine \
                   (default unlimited).")
  in
  Term.(
    const make_hardening $ lenient $ partial_ok $ max_depth $ max_bytes
    $ max_structures)

let report_arg =
  Arg.(value & opt (some string) None
       & info [ "report" ] ~docv:"FILE"
           ~doc:"Write a versioned machine-readable JSON run report \
                 (config, stats, span timings, stream snapshot series, \
                 GC summary) to $(docv). Streaming engine only; check a \
                 report with $(b,xaos report validate).")

let metrics_arg =
  Arg.(value & opt (some string) None
       & info [ "metrics" ] ~docv:"FILE"
           ~doc:"Stream snapshot points to $(docv) as NDJSON during the \
                 run, then append Prometheus-style text metrics at exit \
                 ($(b,-) for stdout). Streaming engine only.")

let trace_out_arg =
  Arg.(value & opt (some string) None
       & info [ "trace-out" ] ~docv:"FILE"
           ~doc:"Record matching-structure lifecycle events and write \
                 them as Chrome trace-event JSON to $(docv) — loadable in \
                 ui.perfetto.dev. Streaming engine only.")

let trace_capacity_arg =
  Arg.(value & opt int 65536
       & info [ "trace-capacity" ] ~docv:"N"
           ~doc:"Ring-buffer capacity of --trace-out in events (default \
                 65536); at capacity the oldest events are dropped.")

let snapshot_interval_arg =
  Arg.(value & opt int 65536
       & info [ "snapshot-interval" ] ~docv:"BYTES"
           ~doc:"Document bytes between stream snapshot points recorded \
                 by --report / --metrics (default 65536).")

let eval_term =
  Term.(
    const eval_cmd $ query_arg $ file_arg $ engine_arg
    $ flag [ "eager" ] "Stream results out as soon as they are known \
                        (forward-only chain expressions)."
    $ flag [ "earliest" ] "Earliest-decision emission: print each result \
                           the moment the stream decides it, for every \
                           expression (backward axes included); the \
                           result set is identical to the default \
                           deferred mode and is checked against it."
    $ flag [ "no-filter" ] "Disable the looking-for relevance filter \
                            (ablation; results unchanged)."
    $ flag [ "no-counters" ] "Disable the boolean-subtree optimization, \
                              retaining all matching structures."
    $ flag [ "stats" ] "Print engine statistics (plus wall-clock time \
                        and peak heap words) to stderr."
    $ flag [ "count" ] "Print only the number of results."
    $ flag [ "tuples" ] "Also print result tuples of \\$-marked \
                         expressions."
    $ report_arg $ metrics_arg $ trace_out_arg $ trace_capacity_arg
    $ snapshot_interval_arg $ hardening_term)

let eval_command =
  Cmd.v
    (Cmd.info "eval"
       ~doc:"Evaluate an XPath expression over a document in one streaming \
             pass")
    eval_term

let explain_command =
  Cmd.v
    (Cmd.info "explain"
       ~doc:"Show the x-tree, x-dag and evaluation plan of an expression")
    Term.(const explain_cmd $ query_arg)

let trace_command =
  let limit =
    Arg.(value & opt (some int) (Some default_trace_limit)
         & info [ "limit" ] ~docv:"N"
             ~doc:(Printf.sprintf
                     "Maximum steps to print (default %d); pass 0 for \
                      unlimited."
                     default_trace_limit))
  in
  let limit = Term.(const (function Some 0 -> None | l -> l) $ limit) in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Print the Table 2-style event walkthrough: per event, the \
             matched x-nodes, the looking-for set and the propagation \
             activity")
    Term.(const trace_cmd $ query_arg $ file_arg $ limit)

let why_command =
  let file =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"FILE"
           ~doc:"XML document (required: provenance needs byte positions).")
  in
  let item =
    Arg.(value & opt (some int) None
         & info [ "item" ] ~docv:"ID"
             ~doc:"Explain only the result item with element id $(docv).")
  in
  Cmd.v
    (Cmd.info "why"
       ~doc:"Explain each result item: walk the causal chain of \
             matching-structure events (created, propagated, undone, \
             emitted) that produced it, with document positions")
    Term.(const why_cmd $ query_arg $ file $ item)

let filter_command =
  let subs =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"SUBSCRIPTIONS"
           ~doc:"File with one XPath expression per line ('#' comments).")
  in
  let docs =
    Arg.(non_empty & pos_right 0 string [] & info [] ~docv:"DOC.xml")
  in
  let shared =
    Arg.(value
         & vflag true
             [
               ( true,
                 info [ "shared" ]
                   ~doc:"Route events through the shared dispatch index \
                         (default): each element event reaches only the \
                         subscriptions whose looking-for frontier can match \
                         it." );
               ( false,
                 info [ "no-shared" ]
                   ~doc:"Feed every event to every subscription (the naive \
                         loop); the differential baseline for --shared." );
             ])
  in
  let earliest =
    flag [ "earliest" ]
      "Compile every subscription in earliest-decision emission mode and \
       check the mid-stream deliveries against the final verdicts \
       (printed output is unchanged)."
  in
  Cmd.v
    (Cmd.info "filter"
       ~doc:"Publish/subscribe filtering: match documents against a set of \
             subscriptions, one pass per document")
    Term.(const filter_cmd $ subs $ docs $ shared $ earliest $ hardening_term)

let output_arg =
  Arg.(value & opt (some string) None
       & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output file (stdout).")

let generate_xmark_command =
  let scale =
    Arg.(value & opt float 0.01 & info [ "scale" ] ~doc:"XMark scale factor.")
  in
  let seed =
    Arg.(value & opt (some int) None & info [ "seed" ] ~doc:"PRNG seed.")
  in
  Cmd.v
    (Cmd.info "xmark" ~doc:"Generate an XMark-like auction document")
    Term.(const generate_xmark $ scale $ seed $ output_arg)

let generate_random_command =
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"PRNG seed.") in
  let elements =
    Arg.(value & opt int 10_000
         & info [ "elements" ] ~doc:"Minimum element count.")
  in
  let query_out =
    Arg.(value & opt (some string) None
         & info [ "query-out" ] ~docv:"FILE"
             ~doc:"Write the generated expression here (stderr otherwise).")
  in
  Cmd.v
    (Cmd.info "random"
       ~doc:"Generate a random size-6 expression and a matching document \
             (the paper's Section 6.2 workload)")
    Term.(const generate_random $ seed $ elements $ output_arg $ query_out)

let generate_command =
  Cmd.group
    (Cmd.info "generate" ~doc:"Workload generators")
    [ generate_xmark_command; generate_random_command ]

(* ------------------------------------------------------------------ *)
(* serve / publish / subscribe / soak — the subscription service       *)
(* ------------------------------------------------------------------ *)

module Service = Xaos_service
module Json = Xaos_obs.Json

let default_socket =
  Filename.concat (Filename.get_temp_dir_name ()) "xaos.sock"

let socket_arg =
  Arg.(value & opt string default_socket
       & info [ "socket" ] ~docv:"PATH"
           ~doc:"Unix-domain socket path of the service.")

let with_connection socket f =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX socket)
   with Unix.Unix_error (e, _, _) ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     die exit_io_error
       (Printf.sprintf "cannot connect to %s: %s (is the service running? \
                        start it with `xaos serve --socket %s`)"
          socket (Unix.error_message e) socket));
  Fun.protect
    ~finally:(fun () ->
      (try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
      try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () -> f fd)

let send_request fd req =
  let line = Service.Protocol.to_line (Service.Protocol.request_to_json req) in
  let len = String.length line in
  let rec go off =
    if off < len then go (off + Unix.write_substring fd line off (len - off))
  in
  try go 0
  with Unix.Unix_error (e, _, _) ->
    die exit_io_error ("service write failed: " ^ Unix.error_message e)

(* Reassemble response lines across reads; [f] returns [`Stop] to
   disconnect. *)
let iter_response_lines fd f =
  let chunk = Bytes.create 65536 in
  let acc = Buffer.create 4096 in
  let stop = ref false in
  while not !stop do
    match Unix.read fd chunk 0 (Bytes.length chunk) with
    | 0 -> stop := true
    | n ->
      Buffer.add_subbytes acc chunk 0 n;
      if Bytes.index_opt (Bytes.sub chunk 0 n) '\n' <> None then begin
        let rec feed = function
          | [] -> ()
          | [ rest ] -> Buffer.add_string acc rest
          | line :: tl ->
            if (not !stop) && line <> "" then
              (match f line with `Stop -> stop := true | `Continue -> ());
            feed tl
        in
        let pending = Buffer.contents acc in
        Buffer.clear acc;
        feed (String.split_on_char '\n' pending)
      end
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error (e, _, _) ->
      die exit_io_error ("service read failed: " ^ Unix.error_message e)
  done

let json_str field json =
  Option.bind (Json.member field json) Json.to_str

(* Open the shared --metrics sink: "-" is stdout, anything else a file
   (truncated). Returns the channel and whether we own (must close) it. *)
let open_metrics_sink = function
  | None -> None
  | Some path when String.equal path "-" -> Some (stdout, false)
  | Some path -> (
    try Some (open_out path, true)
    with Sys_error msg -> die exit_io_error msg)

let serve_cmd socket budget deadline high low subs_file earliest attrib
    slow_ms flight_sample flight_dir metrics snapshot_interval_s =
  if low < 0 || low >= high then
    die exit_query_error "--low-watermark must satisfy 0 <= low < high";
  if snapshot_interval_s <= 0. then
    die exit_query_error "--snapshot-interval must be positive";
  let broker =
    { Service.Broker.default_config with budget; deadline_s = deadline;
      earliest; slow_ms }
  in
  if attrib then begin
    Xaos_obs.Attrib.reset ();
    Xaos_obs.Attrib.enable ()
  end;
  (match (flight_sample, flight_dir) with
  | Some n, _ when n > 0 ->
    Xaos_obs.Flight.configure ~sample_every:n ?dir:flight_dir ()
  | None, Some _ ->
    (* a directory alone implies the default sampling grid *)
    Xaos_obs.Flight.configure ~sample_every:25 ?dir:flight_dir ()
  | _ -> ());
  let config =
    { (Service.Server.default_config socket) with
      high_watermark = high; low_watermark = low; broker }
  in
  (* Block INT/TERM before any thread is spawned (they inherit the
     mask); a dedicated watcher thread turns the signal into a graceful
     stop — a Sys.Signal_handle would never run while every thread is
     parked in a blocking call. *)
  let signals = [ Sys.sigint; Sys.sigterm ] in
  (try ignore (Thread.sigmask Unix.SIG_BLOCK signals)
   with Invalid_argument _ | Unix.Unix_error _ -> ());
  let server =
    try Service.Server.start config
    with Unix.Unix_error (e, _, _) ->
      die exit_io_error
        (Printf.sprintf "cannot bind %s: %s" socket (Unix.error_message e))
  in
  (match subs_file with
  | None -> ()
  | Some path ->
    let ic = try open_in path with Sys_error msg -> die exit_io_error msg in
    let n = ref 0 in
    (try
       while true do
         let line = String.trim (input_line ic) in
         if line <> "" && line.[0] <> '#' then begin
           incr n;
           match
             Service.Broker.subscribe (Service.Server.broker server)
               ~name:(Printf.sprintf "s%d" !n)
               ~query:line
           with
           | Ok () -> ()
           | Error msg -> die exit_query_error (line ^ ": " ^ msg)
         end
       done
     with End_of_file -> close_in_noerr ic);
    Format.eprintf "loaded %d subscriptions from %s@." !n path);
  Format.eprintf "xaos service listening on %s@." socket;
  ignore
    (Thread.create
       (fun () ->
         match Thread.wait_signal signals with
         | _ -> Service.Server.stop server
         | exception _ -> ())
       ());
  (* --metrics: telemetry on, one NDJSON stats snapshot per interval
     during the run, the Prometheus exposition appended at exit — the
     same sink contract as `xaos eval --metrics` with time instead of
     document bytes as the snapshot axis. *)
  let metrics_sink = open_metrics_sink metrics in
  let stop_sampler =
    match metrics_sink with
    | None -> fun () -> ()
    | Some (oc, _) ->
      Tel.enable ();
      let stop = ref false in
      let started = Unix.gettimeofday () in
      let th =
        Thread.create
          (fun () ->
            while not !stop do
              let fields =
                List.map
                  (fun (k, v) -> (k, Json.Float v))
                  (Service.Server.stats server)
              in
              output_string oc
                (Json.to_string ~indent:false
                   (Json.Obj
                      [ ("elapsed_s",
                         Json.Float (Unix.gettimeofday () -. started));
                        ("stats", Json.Obj fields) ]));
              output_char oc '\n';
              flush oc;
              (* nap in small steps so shutdown is prompt *)
              let rec nap left =
                if left > 0. && not !stop then begin
                  Thread.delay (Float.min 0.2 left);
                  nap (left -. 0.2)
                end
              in
              nap snapshot_interval_s
            done)
          ()
      in
      fun () ->
        stop := true;
        Thread.join th
  in
  Service.Server.wait server;
  stop_sampler ();
  (match metrics_sink with
  | None -> ()
  | Some (oc, close) ->
    output_string oc (Xaos_obs.Expose.render ());
    if close then close_out_noerr oc else flush oc);
  Format.eprintf "xaos service stopped@."

let publish_cmd socket priority files =
  with_connection socket (fun fd ->
      let pending = Hashtbl.create 16 in
      List.iter
        (fun path ->
          let doc =
            try In_channel.with_open_bin path In_channel.input_all
            with Sys_error msg -> die exit_io_error msg
          in
          let doc_id = Filename.basename path in
          Hashtbl.replace pending doc_id ();
          send_request fd
            (Service.Protocol.Publish { doc_id; priority; doc }))
        files;
      let failures = ref 0 in
      iter_response_lines fd (fun line ->
          print_endline line;
          (match Json.parse line with
          | Error _ -> ()
          | Ok json ->
            (* a document is settled by its [processed] event or by an
               overload/error response naming it *)
            (match json_str "event" json, json_str "id" json with
            | Some "processed", Some id -> Hashtbl.remove pending id
            | _, id_opt ->
              (match Json.member "ok" json, json_str "error" json with
              | Some (Json.Bool false), err ->
                incr failures;
                (match (id_opt, err) with
                | Some id, Some "overload" -> Hashtbl.remove pending id
                | _ -> ())
              | _ -> ())));
          if Hashtbl.length pending = 0 then `Stop else `Continue);
      if Hashtbl.length pending > 0 then
        die exit_io_error
          "connection closed before every document was processed";
      if !failures > 0 then exit 1)

let subscribe_cmd socket name query earliest =
  with_connection socket (fun fd ->
      send_request fd (Service.Protocol.Subscribe { name; query; earliest });
      let acked = ref false in
      iter_response_lines fd (fun line ->
          print_endline line;
          if not !acked then begin
            acked := true;
            match Json.parse line with
            | Ok json when Json.member "ok" json = Some (Json.Bool false) ->
              die exit_query_error
                (Option.value ~default:"subscribe refused"
                   (json_str "error" json))
            | _ -> ()
          end;
          `Continue))

let service_stats_cmd socket =
  with_connection socket (fun fd ->
      send_request fd Service.Protocol.Stats;
      iter_response_lines fd (fun line ->
          print_endline line;
          `Stop))

let metrics_cmd socket =
  with_connection socket (fun fd ->
      send_request fd Service.Protocol.Metrics;
      iter_response_lines fd (fun line ->
          (match Json.parse line with
          | Error e -> die exit_ill_formed ("bad metrics response: " ^ e)
          | Ok json -> (
            match Json.member "ok" json with
            | Some (Json.Bool true) -> (
              match
                Option.bind (Json.member "metrics" json) Json.to_str
              with
              | Some text -> print_string text
              | None ->
                die exit_ill_formed "metrics response without metrics field")
            | _ ->
              die exit_io_error
                (Option.value ~default:"metrics refused"
                   (json_str "error" json))));
          `Stop))

(* {2 xaos profile / slowlog: cost attribution over the wire} *)

let jnum field j =
  match Option.bind (Json.member field j) Json.to_float with
  | Some v -> v
  | None -> 0.

let render_profile json =
  let enabled = Json.member "enabled" json = Some (Json.Bool true) in
  let by = Option.value ~default:"match_s" (json_str "by" json) in
  let totals = Option.value ~default:Json.Null (Json.member "totals" json) in
  if not enabled then
    Format.printf
      "attribution disabled — start the service with --attrib@.";
  Format.printf
    "accounts %.0f   docs %.0f   events %.0f   match %.3f ms   emissions \
     %.0f   faults %.0f@."
    (jnum "subscriptions" totals)
    (jnum "docs" totals) (jnum "events" totals)
    (jnum "match_s" totals *. 1e3)
    (jnum "emissions" totals) (jnum "faults" totals);
  let top =
    Option.value ~default:[]
      (Option.bind (Json.member "top" json) Json.to_list)
  in
  if top <> [] then begin
    Format.printf "top by %s:@." by;
    Format.printf "  %-20s %8s %12s %12s %9s %8s@." "subscription" "docs"
      "events" "match ms" "emitted" "faults";
    List.iter
      (fun e ->
        Format.printf "  %-20s %8.0f %12.0f %12.3f %9.0f %8.0f@."
          (Option.value ~default:"?" (json_str "key" e))
          (jnum "docs" e) (jnum "events" e)
          (jnum "match_s" e *. 1e3)
          (jnum "emissions" e) (jnum "faults" e))
      top
  end

let profile_cmd socket top_n by =
  if top_n <= 0 then die exit_query_error "--top must be positive";
  (match Xaos_obs.Attrib.order_of_string by with
  | Some _ -> ()
  | None -> die exit_query_error ("unknown --by order: " ^ by));
  with_connection socket (fun fd ->
      send_request fd (Service.Protocol.Profile { top_n; by });
      iter_response_lines fd (fun line ->
          (match Json.parse line with
          | Error e -> die exit_ill_formed ("bad profile response: " ^ e)
          | Ok json -> (
            match Json.member "ok" json with
            | Some (Json.Bool true) -> render_profile json
            | _ ->
              die exit_io_error
                (Option.value ~default:"profile refused"
                   (json_str "error" json))));
          `Stop))

let slowlog_cmd socket max json_out =
  if max <= 0 then die exit_query_error "--max must be positive";
  with_connection socket (fun fd ->
      send_request fd (Service.Protocol.Slowlog { max });
      iter_response_lines fd (fun line ->
          (match Json.parse line with
          | Error e -> die exit_ill_formed ("bad slowlog response: " ^ e)
          | Ok json -> (
            match Json.member "ok" json with
            | Some (Json.Bool true) ->
              let slow =
                Option.value ~default:[]
                  (Option.bind (Json.member "slow" json) Json.to_list)
              in
              if json_out then
                List.iter
                  (fun sd ->
                    print_endline (Json.to_string ~indent:false sd))
                  slow
              else if slow = [] then
                Format.printf "slow-document log empty@."
              else begin
                Format.printf "%-12s %8s %12s %8s %7s  %s@." "doc" "tick"
                  "total ms" "events" "faults" "top subscriptions";
                List.iter
                  (fun sd ->
                    let top =
                      Option.value ~default:[]
                        (Option.bind (Json.member "top" sd) Json.to_list)
                      |> List.map (fun e ->
                             Printf.sprintf "%s=%.3fms"
                               (Option.value ~default:"?" (json_str "sub" e))
                               (jnum "match_s" e *. 1e3))
                      |> String.concat " "
                    in
                    Format.printf "%-12s %8.0f %12.3f %8.0f %7.0f  %s@."
                      (Option.value ~default:"?" (json_str "doc_id" sd))
                      (jnum "tick" sd) (jnum "total_ms" sd)
                      (jnum "events" sd) (jnum "faults" sd) top)
                  slow
              end
            | _ ->
              die exit_io_error
                (Option.value ~default:"slowlog refused"
                   (json_str "error" json))));
          `Stop))

(* {2 xaos top: live terminal dashboard over stats-stream} *)

let top_stat stats name =
  match List.assoc_opt name stats with
  | Some (Json.Float v) -> v
  | Some (Json.Int v) -> float_of_int v
  | _ -> 0.

let render_top ~socket ~clear ~prev json =
  let stats =
    Option.value ~default:[]
      (Option.bind (Json.member "stats" json) Json.to_obj)
  in
  let elapsed =
    Option.value ~default:0.
      (Option.bind (Json.member "elapsed_s" json) Json.to_float)
  in
  let seq =
    Option.value ~default:0 (Option.bind (Json.member "seq" json) Json.to_int)
  in
  let s = top_stat stats in
  let docs = s "service/docs" in
  let rate =
    match !prev with
    | Some (pdocs, pelapsed) when elapsed > pelapsed ->
      (docs -. pdocs) /. (elapsed -. pelapsed)
    | _ -> 0.
  in
  prev := Some (docs, elapsed);
  let b = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line "xaos top — %s   snapshot #%d   elapsed %.1fs" socket seq elapsed;
  line "docs %.0f (%.1f/s)   events %.0f   matches %.0f   live subs %.0f"
    docs rate
    (s "service/events")
    (s "service/subscription_matches")
    (s "service/live_subscriptions");
  if List.mem_assoc "service/queryset_classes" stats then
    line "compaction: %.0f subs -> %.0f engine classes (%.2fx)"
      (s "service/queryset_members")
      (s "service/queryset_classes")
      (s "service/compaction_ratio");
  line
    "queue %.0f   connections %.0f   shed %.0f   displaced %.0f   dropped \
     %.0f   crashes %.0f"
    (s "ingress/queue")
    (s "server/connections")
    (s "ingress/shed")
    (s "ingress/displaced")
    (s "server/dropped_responses")
    (s "server/thread_crashes");
  line
    "faults: sax %.0f   deadline %.0f   limit %.0f   aborted %.0f   failed \
     %.0f"
    (s "service/sax_faults")
    (s "service/deadline_ends")
    (s "service/limit_ends")
    (s "service/runs_aborted")
    (s "service/runs_failed");
  let ms v = v *. 1e3 in
  let stage label key =
    if List.mem_assoc (key ^ "_p50_s") stats then
      line "  %-18s p50 %8.3f ms   p99 %8.3f ms" label
        (ms (s (key ^ "_p50_s")))
        (ms (s (key ^ "_p99_s")))
  in
  line "latency:";
  stage "ingress wait" "stage/ingress_wait";
  stage "parse" "stage/parse";
  stage "dispatch" "stage/dispatch";
  stage "subscription match" "stage/subscription_match";
  stage "writer wait" "stage/writer_wait";
  if List.mem_assoc "engine/emission_p50_bytes" stats then
    line "  %-18s p50 %8.0f B    p99 %8.0f B" "emission"
      (s "engine/emission_p50_bytes")
      (s "engine/emission_p99_bytes");
  let quarantined =
    Option.value ~default:[]
      (Option.bind (Json.member "quarantined" json) Json.to_list)
  in
  line "quarantined (%d):" (List.length quarantined);
  List.iter
    (fun q ->
      let f name = Option.value ~default:"?" (json_str name q) in
      let release =
        Option.value ~default:0
          (Option.bind (Json.member "release_tick" q) Json.to_int)
      in
      line "  %-12s %s (release @ tick %d)" (f "name") (f "reason") release)
    quarantined;
  let top_costs =
    Option.value ~default:[]
      (Option.bind (Json.member "top_costs" json) Json.to_list)
  in
  if top_costs <> [] then begin
    line "cost (top by match time):";
    List.iter
      (fun e ->
        line "  %-12s docs %6.0f   events %9.0f   match %9.3f ms   \
              emitted %6.0f   faults %4.0f"
          (Option.value ~default:"?" (json_str "key" e))
          (jnum "docs" e) (jnum "events" e)
          (jnum "match_s" e *. 1e3)
          (jnum "emissions" e) (jnum "faults" e))
      top_costs
  end;
  if clear then print_string "\027[2J\027[H";
  print_string (Buffer.contents b);
  flush stdout

let top_cmd socket interval once =
  if interval <= 0. then
    die exit_query_error "--interval must be positive";
  with_connection socket (fun fd ->
      send_request fd
        (Service.Protocol.Stats_stream
           { interval_s = interval; count = (if once then Some 1 else None) });
      let prev = ref None in
      let seen = ref 0 in
      iter_response_lines fd (fun line ->
          match Json.parse line with
          | Error _ -> `Continue
          | Ok json -> (
            match json_str "event" json with
            | Some "stats" ->
              render_top ~socket ~clear:(not once) ~prev json;
              incr seen;
              if once then `Stop else `Continue
            | _ -> (
              (* the stats-stream ack, or an error refusing it *)
              match Json.member "ok" json with
              | Some (Json.Bool false) ->
                die exit_io_error
                  (Option.value ~default:"stats-stream refused"
                     (json_str "error" json))
              | _ -> `Continue)));
      if !seen = 0 then
        die exit_io_error "connection closed before any snapshot arrived")

(* Periodic stats sampler for `xaos soak --metrics`: the soak's server
   only exists inside [Soak.run], so snapshots are taken the honest way
   — over the socket, one short-lived connection and a [stats] request
   per tick. Connect failures (server not up yet / already gone) skip
   the tick. *)
let spawn_soak_sampler ~socket_path ~interval_s oc =
  let stop = ref false in
  let started = Unix.gettimeofday () in
  let sample_once () =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Fun.protect
      ~finally:(fun () ->
        try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        match Unix.connect fd (Unix.ADDR_UNIX socket_path) with
        | exception Unix.Unix_error _ -> ()
        | () -> (
          let line =
            Service.Protocol.to_line
              (Service.Protocol.request_to_json Service.Protocol.Stats)
          in
          (try
             ignore (Unix.write_substring fd line 0 (String.length line))
           with Unix.Unix_error _ -> ());
          let buf = Buffer.create 4096 in
          let chunk = Bytes.create 4096 in
          let rec rd () =
            if not (String.contains (Buffer.contents buf) '\n') then
              match Unix.read fd chunk 0 (Bytes.length chunk) with
              | 0 -> ()
              | n ->
                Buffer.add_subbytes buf chunk 0 n;
                rd ()
              | exception Unix.Unix_error _ -> ()
          in
          rd ();
          let contents = Buffer.contents buf in
          match String.index_opt contents '\n' with
          | None -> ()
          | Some i ->
            (* re-frame with the sampler's own clock *)
            let reply = String.sub contents 0 i in
            (match Json.parse reply with
            | Ok json when Json.member "ok" json = Some (Json.Bool true) ->
              let stats =
                Option.value ~default:Json.Null (Json.member "stats" json)
              in
              output_string oc
                (Json.to_string ~indent:false
                   (Json.Obj
                      [ ("elapsed_s",
                         Json.Float (Unix.gettimeofday () -. started));
                        ("stats", stats) ]));
              output_char oc '\n';
              flush oc
            | _ -> ())))
  in
  let th =
    Thread.create
      (fun () ->
        while not !stop do
          (try sample_once () with _ -> ());
          let rec nap left =
            if left > 0. && not !stop then begin
              Thread.delay (Float.min 0.2 left);
              nap (left -. 0.2)
            end
          in
          nap interval_s
        done)
      ()
  in
  fun () ->
    stop := true;
    Thread.join th

let soak_cmd docs subs rate seed socket report event_log slow_ms
    flight_sample flight_dir metrics snapshot_interval_s quiet =
  if snapshot_interval_s <= 0. then
    die exit_query_error "--snapshot-interval must be positive";
  let socket_path =
    Option.value socket ~default:Service.Soak.default_config.socket_path
  in
  let cfg =
    { Service.Soak.docs; subs; fault_rate = rate; seed;
      report_path = report; event_log_path = event_log; socket_path;
      slow_ms = Some slow_ms; flight_sample; flight_dir }
  in
  let progress =
    if quiet then ignore else fun m -> Format.eprintf "%s@." m
  in
  let metrics_sink = open_metrics_sink metrics in
  let stop_sampler =
    match metrics_sink with
    | None -> fun () -> ()
    | Some (oc, _) ->
      spawn_soak_sampler ~socket_path ~interval_s:snapshot_interval_s oc
  in
  let s =
    Fun.protect ~finally:stop_sampler (fun () ->
        Service.Soak.run ~progress cfg)
  in
  (match metrics_sink with
  | None -> ()
  | Some (oc, close) ->
    (* the soak runs in-process, so the registry the server filled is
       ours to expose directly *)
    output_string oc (Xaos_obs.Expose.render ());
    if close then close_out_noerr oc else flush oc);
  Format.printf "published %d  completed %d  (processed %d, shed %d, \
                 displaced %d)@."
    s.published s.completed s.processed s.shed s.displaced;
  Format.printf "client aborts %d  match events %d  quarantine/readmit \
                 events %d/%d@."
    s.client_aborts s.match_events s.quarantine_events s.readmit_events;
  Format.printf "sax faults %d  limit ends %d  deadline ends %d@."
    s.sax_faults s.limit_ends s.deadline_ends;
  Format.printf "quarantined %d  readmitted %d  differential %d checked, \
                 %d mismatches  crashes %d@."
    s.quarantined_total s.readmitted_total s.checked s.mismatches s.crashes;
  let stage_names =
    [ "ingress"; "parse"; "dispatch"; "match"; "emission"; "writer" ]
  in
  Format.printf "attribution: %d accounts (%s)  slow docs %d (typed log \
                 %d)  flight stages %s (%d files)@."
    s.attrib_subs
    (match s.attrib_errors with
    | [] -> "conserved"
    | errs -> "NOT conserved: " ^ String.concat "; " errs)
    s.slow_docs s.log_slow
    (String.concat ","
       (List.filter (fun n -> List.mem n stage_names) s.flight_stages))
    s.flight_written;
  List.iter (Format.printf "mismatch: %s@.") s.mismatch_examples;
  (match report with
  | Some path when s.report_valid -> Format.printf "report: %s@." path
  | _ -> ());
  match Service.Soak.healthy s with
  | Ok () -> Format.printf "HEALTHY@."
  | Error reason ->
    Format.eprintf "UNHEALTHY: %s@." reason;
    exit 1

let serve_command =
  let budget =
    Arg.(value & opt (some int) Service.Broker.default_config.budget
         & info [ "budget" ] ~docv:"N"
             ~doc:"Per-run live matching-structure budget; a subscription \
                   exceeding it aborts with its partial results (and is \
                   quarantined when it keeps doing so).")
  in
  let deadline =
    Arg.(value
         & opt (some float) Service.Broker.default_config.deadline_s
         & info [ "deadline" ] ~docv:"SECONDS"
             ~doc:"Per-document wall-clock deadline; on expiry the \
                   document is finished partially.")
  in
  let high =
    Arg.(value & opt int 64
         & info [ "high-watermark" ] ~docv:"N"
             ~doc:"Ingress queue bound; publishes past it are shed or \
                   displace lower-priority queued documents.")
  in
  let low =
    Arg.(value & opt int 16
         & info [ "low-watermark" ] ~docv:"N"
             ~doc:"Queue length at which the overloaded state clears.")
  in
  let subs_file =
    Arg.(value & opt (some string) None
         & info [ "subscriptions" ] ~docv:"FILE"
             ~doc:"Pre-register one XPath subscription per line ('#' \
                   comments), named s1, s2, ...")
  in
  let metrics =
    Arg.(value & opt (some string) None
         & info [ "metrics" ] ~docv:"FILE"
             ~doc:"Enable telemetry, stream one stats snapshot to \
                   $(docv) as NDJSON per interval while serving, then \
                   append Prometheus-style text metrics at shutdown \
                   ('-' = stdout).")
  in
  let snapshot_interval =
    Arg.(value & opt float 1.0
         & info [ "snapshot-interval" ] ~docv:"SECONDS"
             ~doc:"Seconds between --metrics stats snapshots (default \
                   1).")
  in
  let earliest =
    flag [ "earliest" ]
      "Compile every subscription (including pre-registered ones) in \
       earliest-decision emission mode: owners receive one 'item' event \
       per result the moment it is decided, mid-document."
  in
  let attrib =
    flag [ "attrib" ]
      "Enable per-subscription cost attribution: every run outcome is \
       charged to the owning subscription's account (query it with \
       $(b,xaos profile); 'xaos top' shows the top accounts)."
  in
  let slow_ms =
    Arg.(value & opt (some float) None
         & info [ "slow-ms" ] ~docv:"MS"
             ~doc:"Slow-document threshold: a document whose pipeline \
                   time reaches $(docv) milliseconds lands in the slow \
                   log ($(b,xaos slowlog)) with its per-subscription \
                   breakdown; 0 flags every document.")
  in
  let flight_sample =
    Arg.(value & opt (some int) None
         & info [ "flight-sample" ] ~docv:"N"
             ~doc:"Flight recorder: record a causal span tree across \
                   the pipeline for every $(docv)th document (slow and \
                   faulted documents always keep); 0 disables.")
  in
  let flight_dir =
    Arg.(value & opt (some string) None
         & info [ "flight-dir" ] ~docv:"DIR"
             ~doc:"Write kept flight recordings to $(docv) as Chrome \
                   trace-event JSON (loads in Perfetto); implies \
                   --flight-sample 25 when that flag is absent.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the persistent subscription service on a Unix-domain \
             socket (line-delimited JSON; see xaos subscribe/publish)")
    Term.(const serve_cmd $ socket_arg $ budget $ deadline $ high $ low
          $ subs_file $ earliest $ attrib $ slow_ms $ flight_sample
          $ flight_dir $ metrics $ snapshot_interval)

let publish_command =
  let priority =
    Arg.(value & opt int 0
         & info [ "priority" ] ~docv:"N"
             ~doc:"Admission priority under overload (higher survives).")
  in
  let files =
    Arg.(non_empty & pos_all string [] & info [] ~docv:"DOC.xml")
  in
  Cmd.v
    (Cmd.info "publish"
       ~doc:"Publish documents to a running service and print its \
             responses (exit 1 if any document was shed or refused)")
    Term.(const publish_cmd $ socket_arg $ priority $ files)

let subscribe_command =
  let sub_name =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"NAME")
  in
  let sub_query =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"QUERY")
  in
  let earliest =
    flag [ "earliest" ]
      "Opt into earliest-decision emission: the service additionally \
       streams one 'item' event per result element the moment it is \
       decided, while the document is still being parsed."
  in
  Cmd.v
    (Cmd.info "subscribe"
       ~doc:"Register a subscription on a running service and stream its \
             match/quarantine/readmit/item events to stdout until \
             interrupted")
    Term.(const subscribe_cmd $ socket_arg $ sub_name $ sub_query $ earliest)

let service_stats_command =
  Cmd.v
    (Cmd.info "service-stats"
       ~doc:"Print one stats snapshot of a running service as JSON")
    Term.(const service_stats_cmd $ socket_arg)

let metrics_command =
  Cmd.v
    (Cmd.info "metrics"
       ~doc:"Scrape a running service: print its Prometheus-style text \
             exposition (counters, gauges, latency histograms)")
    Term.(const metrics_cmd $ socket_arg)

let profile_command =
  let top_n =
    Arg.(value & opt int 10
         & info [ "top" ] ~docv:"N"
             ~doc:"Show the $(docv) most expensive accounts (default \
                   10).")
  in
  let by =
    Arg.(value & opt string "match_s"
         & info [ "by" ] ~docv:"ORDER"
             ~doc:"Ranking measure: match_s (default), events, \
                   emissions, structures or faults.")
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:"Query a running service's per-subscription cost accounts: \
             registry totals plus the most expensive subscriptions \
             (requires the service to run with --attrib)")
    Term.(const profile_cmd $ socket_arg $ top_n $ by)

let slowlog_command =
  let max =
    Arg.(value & opt int 20
         & info [ "max" ] ~docv:"N"
             ~doc:"Show at most $(docv) records, newest first (default \
                   20).")
  in
  let json_out =
    flag [ "json" ] "Print one JSON object per record instead of the \
                     table."
  in
  Cmd.v
    (Cmd.info "slowlog"
       ~doc:"Print a running service's slow-document log: documents \
             whose pipeline time crossed --slow-ms, with their \
             per-subscription cost breakdown")
    Term.(const slowlog_cmd $ socket_arg $ max $ json_out)

let top_command =
  let interval =
    Arg.(value & opt float 1.0
         & info [ "interval" ] ~docv:"SECONDS"
             ~doc:"Seconds between dashboard refreshes (default 1).")
  in
  let once =
    flag [ "once" ]
      "Render a single snapshot without clearing the screen and exit \
       (no TTY required)."
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:"Live terminal dashboard of a running service: throughput, \
             per-stage latency quantiles, queue depth, quarantine set \
             and fault counters over stats-stream")
    Term.(const top_cmd $ socket_arg $ interval $ once)

let soak_command =
  let docs =
    Arg.(value & opt int Service.Soak.default_config.docs
         & info [ "docs" ] ~docv:"N" ~doc:"Main-stream documents.")
  in
  let subs =
    Arg.(value & opt int Service.Soak.default_config.subs
         & info [ "subs" ] ~docv:"N"
             ~doc:"Live subscriptions (including the poison one).")
  in
  let rate =
    Arg.(value & opt float Service.Soak.default_config.fault_rate
         & info [ "rate" ] ~docv:"P" ~doc:"Fault probability per document.")
  in
  let seed =
    Arg.(value & opt int Service.Soak.default_config.seed
         & info [ "seed" ] ~doc:"Chaos PRNG seed (faults replay from it).")
  in
  let socket =
    Arg.(value & opt (some string) None
         & info [ "socket" ] ~docv:"PATH"
             ~doc:"Socket path for the in-process server (temp dir \
                   default).")
  in
  let report =
    Arg.(value & opt (some string) None
         & info [ "report" ] ~docv:"FILE"
             ~doc:"Write the service run report here (validate it with \
                   $(b,xaos report validate)).")
  in
  let event_log =
    Arg.(value & opt (some string) None
         & info [ "event-log" ] ~docv:"FILE"
             ~doc:"Stream every structured supervision event \
                   (quarantine, shed, displace, drop, crash, readmit) \
                   to $(docv) as NDJSON.")
  in
  let metrics =
    Arg.(value & opt (some string) None
         & info [ "metrics" ] ~docv:"FILE"
             ~doc:"Stream one stats snapshot to $(docv) as NDJSON per \
                   interval during the soak, then append \
                   Prometheus-style text metrics at exit ('-' = \
                   stdout).")
  in
  let snapshot_interval =
    Arg.(value & opt float 1.0
         & info [ "snapshot-interval" ] ~docv:"SECONDS"
             ~doc:"Seconds between --metrics stats snapshots (default \
                   1).")
  in
  let slow_ms =
    Arg.(value & opt float 0.
         & info [ "slow-ms" ] ~docv:"MS"
             ~doc:"Slow-document threshold in milliseconds (default 0: \
                   every document lands in the slow log, making the \
                   slow-log gate deterministic).")
  in
  let flight_sample =
    Arg.(value & opt int Service.Soak.default_config.flight_sample
         & info [ "flight-sample" ] ~docv:"N"
             ~doc:"Flight-recorder sampling grid: every $(docv)th \
                   document keeps its recording (slow and faulted \
                   documents always keep); 0 disables the recorder and \
                   its gate.")
  in
  let flight_dir =
    Arg.(value & opt (some string) None
         & info [ "flight-dir" ] ~docv:"DIR"
             ~doc:"Write kept flight recordings to $(docv) as Chrome \
                   trace-event JSON (loads in Perfetto).")
  in
  let quiet = flag [ "quiet" ] "Suppress progress messages." in
  Cmd.v
    (Cmd.info "soak"
       ~doc:"Run the chaos soak: an in-process service under fault \
             injection, differentially checked; exit 1 unless healthy")
    Term.(const soak_cmd $ docs $ subs $ rate $ seed $ socket $ report
          $ event_log $ slow_ms $ flight_sample $ flight_dir $ metrics
          $ snapshot_interval $ quiet)

let () =
  let info =
    Cmd.info "xaos" ~version:"1.0"
      ~doc:"Streaming XPath with forward and backward axes (χαος, ICDE 2003)"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ eval_command; explain_command; trace_command; why_command;
            filter_command; generate_command; report_command;
            serve_command; publish_command; subscribe_command;
            service_stats_command; metrics_command; profile_command;
            slowlog_command; top_command; soak_command ]))
